//! Job model: specifications, states, and dynamic-request bookkeeping.

use std::fmt;
use std::sync::Arc;

use darms_net::HostId;
use darms_sim::{SimDuration, SimTime};

/// Server-assigned job identifier (the `PBS_JOBID`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Identifier of one dynamically allocated accelerator *set*; returned by
/// `pbs_dynget` and passed to `pbs_dynfree` (the paper's "client-id").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Lifecycle of a job as tracked by the server.
///
/// `DynQueued` is the paper's extension: the job is *running* but has a
/// dynamic request waiting for the scheduler (§III-E).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Waiting for initial resources.
    Queued,
    /// Held by the user (`qhold`); invisible to the scheduler until
    /// released with `qrls`.
    Held,
    /// Running normally.
    Running,
    /// Running, with a pending dynamic request (special queue state).
    DynQueued,
    /// Script finished; resources being released.
    Exiting,
    /// Finished and resources released.
    Complete,
    /// Cancelled before or during execution.
    Cancelled,
    /// Killed by the batch system for exceeding its walltime estimate.
    TimedOut,
}

impl JobState {
    /// True for states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Complete | JobState::Cancelled | JobState::TimedOut)
    }
}

/// The application: one async closure instance runs per allocated compute
/// node, owning that node's execution context ([`crate::mom::JobCtx`]).
/// The task epilogue (completion reporting) runs after the body returns.
pub type JobScript = Arc<dyn Fn(crate::mom::JobCtx) -> darms_sim::ProcFuture + Send + Sync>;

/// Convenience constructor for a [`JobScript`]:
/// `script(|mut jc| async move { … })`.
pub fn script<F, Fut>(f: F) -> JobScript
where
    F: Fn(crate::mom::JobCtx) -> Fut + Send + Sync + 'static,
    Fut: std::future::Future<Output = ()> + 'static,
{
    Arc::new(move |jc| Box::pin(f(jc)))
}

/// What a user submits with `qsub`.
#[derive(Clone)]
pub struct JobSpec {
    /// Job name (for traces).
    pub name: String,
    /// Submitting user (drives fairshare).
    pub owner: String,
    /// Number of compute nodes (`-l nodes=k`).
    pub nodes: usize,
    /// Cores per compute node (`:ppn=q`).
    pub ppn: u32,
    /// Network-attached accelerators per compute node (`:acpn=x`, the
    /// paper's extension).
    pub acpn: u32,
    /// User-estimated walltime (drives backfill).
    pub walltime_estimate: SimDuration,
    /// Synthetic run time used when no script is given: the default
    /// script sleeps this long on every compute node, then exits.
    pub runtime: SimDuration,
    /// The application; `None` uses the default synthetic script.
    pub script: Option<JobScript>,
}

impl JobSpec {
    /// A minimal spec: one node, one core, no accelerators, the given
    /// synthetic runtime.
    pub fn synthetic(name: impl Into<String>, runtime: SimDuration) -> Self {
        JobSpec {
            name: name.into(),
            owner: "user".into(),
            nodes: 1,
            ppn: 1,
            acpn: 0,
            walltime_estimate: runtime * 2,
            runtime,
            script: None,
        }
    }

    /// Builder: set the owner.
    pub fn owner(mut self, owner: impl Into<String>) -> Self {
        self.owner = owner.into();
        self
    }

    /// Builder: request `k` compute nodes.
    pub fn nodes(mut self, k: usize) -> Self {
        self.nodes = k.max(1);
        self
    }

    /// Builder: request `q` cores per node.
    pub fn ppn(mut self, q: u32) -> Self {
        self.ppn = q.max(1);
        self
    }

    /// Builder: request `x` network-attached accelerators per node.
    pub fn acpn(mut self, x: u32) -> Self {
        self.acpn = x;
        self
    }

    /// Builder: set the walltime estimate.
    pub fn walltime(mut self, w: SimDuration) -> Self {
        self.walltime_estimate = w;
        self
    }

    /// Builder: set the script.
    pub fn script(mut self, s: JobScript) -> Self {
        self.script = Some(s);
        self
    }

    /// Total accelerator nodes this job needs at start.
    pub fn total_accs(&self) -> usize {
        self.nodes * self.acpn as usize
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("owner", &self.owner)
            .field("nodes", &self.nodes)
            .field("ppn", &self.ppn)
            .field("acpn", &self.acpn)
            .field("walltime_estimate", &self.walltime_estimate)
            .field("runtime", &self.runtime)
            .field("script", &self.script.as_ref().map(|_| "<closure>"))
            .finish()
    }
}

/// One dynamically allocated resource set attached to a running job
/// (accelerators in the paper's case; compute nodes for malleable jobs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynSet {
    /// The set handle returned to the application.
    pub client_id: ClientId,
    /// The compute node that requested it.
    pub cn: HostId,
    /// The granted hosts.
    pub accs: Vec<HostId>,
    /// Cores held per granted host (0 = exclusive accelerator node).
    pub ppn: u32,
}

/// Public job status (what `qstat` reports).
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// Job id.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Owner.
    pub owner: String,
    /// Current state.
    pub state: JobState,
    /// Submission time.
    pub submitted: SimTime,
    /// Start time, if started.
    pub started: Option<SimTime>,
    /// Completion time, if finished.
    pub completed: Option<SimTime>,
    /// Allocated compute hosts (empty while queued).
    pub compute_hosts: Vec<HostId>,
    /// Statically allocated accelerators, per compute node.
    pub static_accs: Vec<Vec<HostId>>,
    /// Live dynamically allocated sets.
    pub dyn_sets: Vec<DynSet>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let s = JobSpec::synthetic("j", SimDuration::from_secs(10))
            .owner("alice")
            .nodes(3)
            .ppn(4)
            .acpn(2)
            .walltime(SimDuration::from_secs(60));
        assert_eq!(s.owner, "alice");
        assert_eq!(s.nodes, 3);
        assert_eq!(s.ppn, 4);
        assert_eq!(s.acpn, 2);
        assert_eq!(s.total_accs(), 6);
        assert_eq!(s.walltime_estimate, SimDuration::from_secs(60));
    }

    #[test]
    fn nodes_and_ppn_clamp_to_one() {
        let s = JobSpec::synthetic("j", SimDuration::from_secs(1)).nodes(0).ppn(0);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.ppn, 1);
    }

    #[test]
    fn ids_display() {
        assert_eq!(JobId(3).to_string(), "job3");
        assert_eq!(ClientId(4).to_string(), "client4");
    }
}
