//! Wire protocol of the batch system: client ⇄ server (IFL), server ⇄
//! scheduler, and server ⇄ mom traffic, including the paper's extensions
//! (`pbs_dynget`/`pbs_dynfree`, `DYNJOIN_JOB`, `DISJOIN_JOB`).

use darms_net::{Address, HostId};
use darms_sim::{SimDuration, SimTime};

use crate::job::{ClientId, DynSet, JobId, JobSpec, JobStatus};
use crate::nodes::NodeRole;

// ---------------------------------------------------------------------
// Client (IFL) -> server
// ---------------------------------------------------------------------

/// `qsub`: submit a job.
#[derive(Clone)]
pub struct QsubReq {
    /// Correlation token chosen by the client.
    pub token: u64,
    /// The job specification.
    pub spec: JobSpec,
    /// Where to deliver the response.
    pub reply: Address,
}

/// Response to [`QsubReq`].
#[derive(Clone)]
pub struct QsubResp {
    /// Echoed token.
    pub token: u64,
    /// The assigned job id.
    pub job: JobId,
}

/// `qstat`: query all job statuses.
#[derive(Clone)]
pub struct QstatReq {
    /// Correlation token.
    pub token: u64,
    /// Where to deliver the response.
    pub reply: Address,
}

/// Response to [`QstatReq`].
#[derive(Clone)]
pub struct QstatResp {
    /// Echoed token.
    pub token: u64,
    /// Status of every known job.
    pub jobs: Vec<JobStatus>,
}

/// `qhold` / `qrls`: hold a queued job (hide it from the scheduler) or
/// release a held one back into the queue.
#[derive(Clone)]
pub struct QholdReq {
    /// Correlation token.
    pub token: u64,
    /// The job to hold or release.
    pub job: JobId,
    /// True = hold, false = release.
    pub hold: bool,
    /// Where to deliver the response.
    pub reply: Address,
}

/// Response to [`QholdReq`].
#[derive(Clone)]
pub struct QholdResp {
    /// Echoed token.
    pub token: u64,
    /// False if the job was unknown or not in a holdable/releasable state.
    pub ok: bool,
}

/// `qdel`: cancel a job.
#[derive(Clone)]
pub struct QdelReq {
    /// Correlation token.
    pub token: u64,
    /// Job to cancel.
    pub job: JobId,
    /// Where to deliver the response.
    pub reply: Address,
}

/// Response to [`QdelReq`].
#[derive(Clone)]
pub struct QdelResp {
    /// Echoed token.
    pub token: u64,
    /// False if the job was unknown or already complete.
    pub ok: bool,
}

/// Which resource a dynamic request asks for. The paper's mechanism is
/// accelerator-specific; `ComputeNodes` generalises it to malleable jobs
/// ("with little extensions ... any malleable application could be
/// supported", §V) using the same DYNJOIN/DISJOIN machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DynResource {
    /// Network-attached accelerators (the paper's case).
    Accelerators,
    /// Whole compute-node core slices for malleable applications.
    ComputeNodes {
        /// Cores per granted node.
        ppn: u32,
    },
}

/// `pbs_dynget`: request `count` additional accelerators for a running
/// job (the paper's IFL extension, §III-B). Blocks the caller until the
/// server responds.
#[derive(Clone)]
pub struct DynGetReq {
    /// Correlation token.
    pub token: u64,
    /// The requesting job.
    pub job: JobId,
    /// The compute node issuing the request.
    pub cn: HostId,
    /// Number of accelerators requested.
    pub count: u32,
    /// Smallest acceptable grant (== `count` for the paper's strict
    /// all-or-nothing semantics; smaller values enable the partial-grant
    /// policy the paper names as future work, §VI).
    pub min_count: u32,
    /// Resource kind requested.
    pub kind: DynResource,
    /// Where to deliver the response.
    pub reply: Address,
}

/// Why a dynamic request failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DynReject {
    /// Not enough free accelerators; the application continues with its
    /// current set (the paper's immediate-reject semantics, §III-E).
    Unavailable,
    /// The job is unknown or not running.
    BadJob,
    /// The retry budget was exhausted without a definitive answer from
    /// the server (only produced when a [`darms_net::RetryPolicy`] is
    /// active). The request may still be serviced server-side; the
    /// server's per-job purge on termination reclaims it.
    Timeout,
}

impl std::fmt::Display for DynReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynReject::Unavailable => write!(f, "not enough free accelerators"),
            DynReject::BadJob => write!(f, "job unknown or not running"),
            DynReject::Timeout => write!(f, "retry budget exhausted without an answer"),
        }
    }
}

/// Successful dynamic allocation.
#[derive(Clone, Debug)]
pub struct DynGrant {
    /// Handle identifying this accelerator set for later release.
    pub client_id: ClientId,
    /// The granted accelerator hosts.
    pub accs: Vec<HostId>,
}

/// Response to [`DynGetReq`].
#[derive(Clone)]
pub struct DynGetResp {
    /// Echoed token.
    pub token: u64,
    /// The grant, or the rejection reason.
    pub result: Result<DynGrant, DynReject>,
}

/// `pbs_dynfree`: release a dynamically allocated set.
#[derive(Clone)]
pub struct DynFreeReq {
    /// Correlation token.
    pub token: u64,
    /// The owning job.
    pub job: JobId,
    /// The set to release.
    pub client_id: ClientId,
    /// Where to deliver the response.
    pub reply: Address,
}

/// Response to [`DynFreeReq`]. Positive as soon as the server accepts the
/// release; disassociation continues in the background (§III-D).
#[derive(Clone)]
pub struct DynFreeResp {
    /// Echoed token.
    pub token: u64,
    /// False if the job/set was unknown.
    pub ok: bool,
}

// ---------------------------------------------------------------------
// Server <-> scheduler
// ---------------------------------------------------------------------

/// Server -> scheduler: the queue or resource state changed.
#[derive(Clone)]
pub struct SchedWake;

/// Scheduler -> server: request a cluster snapshot.
#[derive(Clone)]
pub struct ClusterQueryReq {
    /// Correlation token.
    pub token: u64,
    /// Where to deliver the snapshot.
    pub reply: Address,
    /// Token of the last response this client applied, if it holds a
    /// node-state cache. When it matches the last response the server
    /// actually served, the server may answer with a node *delta*
    /// (changed nodes only) instead of the full list; any mismatch
    /// (lost response, restarted client) falls back to a full snapshot.
    pub cached_token: Option<u64>,
    /// Hosts the client wants restated verbatim in a delta response
    /// even if the server did not change them — the scheduler lists
    /// nodes it mutated speculatively since the last snapshot, so a
    /// grant the server rejected cannot leave its cache stale.
    pub refresh: Vec<HostId>,
}

/// One node as seen by the scheduler.
#[derive(Clone, Copy, Debug)]
pub struct NodeSnap {
    /// Host.
    pub host: HostId,
    /// Role.
    pub role: NodeRole,
    /// Total cores.
    pub cores_total: u32,
    /// Free cores.
    pub cores_free: u32,
    /// Offline flag.
    pub offline: bool,
}

/// One queued job as seen by the scheduler.
#[derive(Clone, Debug)]
pub struct QueuedJobSnap {
    /// Job id.
    pub job: JobId,
    /// Owner (fairshare key).
    pub owner: String,
    /// Submission time (queue-time priority).
    pub submitted: SimTime,
    /// Compute nodes requested.
    pub nodes: usize,
    /// Cores per node requested.
    pub ppn: u32,
    /// Accelerators per node requested.
    pub acpn: u32,
    /// Walltime estimate (backfill).
    pub walltime_estimate: SimDuration,
}

/// One running job as seen by the scheduler (fairshare and backfill).
#[derive(Clone, Debug)]
pub struct RunningJobSnap {
    /// Job id.
    pub job: JobId,
    /// Owner.
    pub owner: String,
    /// Start time.
    pub started: SimTime,
    /// Walltime estimate.
    pub walltime_estimate: SimDuration,
    /// Compute hosts held.
    pub compute_hosts: Vec<HostId>,
    /// Cores per node held.
    pub ppn: u32,
    /// Accelerator hosts held (static and dynamic), for backfill shadow
    /// computation.
    pub acc_hosts: Vec<HostId>,
}

/// The (single) dynamic request currently exposed to the scheduler. The
/// server services dynamic requests serially (the effect measured in the
/// paper's Fig. 9), so at most one is visible at a time.
#[derive(Clone, Debug)]
pub struct DynPendingSnap {
    /// Server-side token identifying this request.
    pub token: u64,
    /// The requesting job.
    pub job: JobId,
    /// The compute node that asked.
    pub cn: HostId,
    /// Accelerators requested.
    pub count: u32,
    /// Smallest acceptable grant.
    pub min_count: u32,
    /// Resource kind requested.
    pub kind: DynResource,
    /// When the request entered the dynqueued state.
    pub queued_at: SimTime,
}

/// Snapshot of everything the scheduler needs for one iteration.
#[derive(Clone, Debug, Default)]
pub struct ClusterSnapshot {
    /// Node states.
    pub nodes: Vec<NodeSnap>,
    /// Jobs waiting for initial allocation, submission order.
    pub queued: Vec<QueuedJobSnap>,
    /// Running jobs.
    pub running: Vec<RunningJobSnap>,
    /// The dynamic request awaiting scheduling, if any.
    pub dyn_pending: Option<DynPendingSnap>,
}

impl ClusterSnapshot {
    /// Blank snapshot (used by `Default` scheduler tests).
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Response to [`ClusterQueryReq`].
#[derive(Clone)]
pub struct ClusterQueryResp {
    /// Echoed token.
    pub token: u64,
    /// The snapshot.
    pub snapshot: ClusterSnapshot,
    /// When `true`, `snapshot.nodes` holds only the nodes that changed
    /// since the response named by the request's `cached_token` (plus
    /// any requested refreshes) — the client patches its cache instead
    /// of rebuilding. `queued`/`running`/`dyn_pending` are always full.
    pub nodes_delta: bool,
}

/// Scheduler -> server: start a queued job on these resources.
#[derive(Clone)]
pub struct RunJobCmd {
    /// The job to start.
    pub job: JobId,
    /// Compute hosts, one per requested node; index 0 becomes the mother
    /// superior.
    pub compute: Vec<HostId>,
    /// Static accelerators, one set per compute host (same indexing).
    pub accs: Vec<Vec<HostId>>,
}

/// Scheduler -> server: satisfy the exposed dynamic request.
#[derive(Clone)]
pub struct RunDynCmd {
    /// Echo of [`DynPendingSnap::token`].
    pub token: u64,
    /// Granted accelerator hosts.
    pub accs: Vec<HostId>,
}

/// Scheduler -> server: reject the exposed dynamic request.
#[derive(Clone)]
pub struct RejectDynCmd {
    /// Echo of [`DynPendingSnap::token`].
    pub token: u64,
}

// ---------------------------------------------------------------------
// Server <-> mom
// ---------------------------------------------------------------------

/// Everything a mom needs to run (its part of) a job.
#[derive(Clone)]
pub struct JobLaunch {
    /// Job id.
    pub job: JobId,
    /// Server-side incarnation of the job: bumped every time the job is
    /// (re)started, so moms of a previous incarnation (e.g. a requeued
    /// job after a node outage) cannot complete the current one.
    pub incarnation: u32,
    /// The spec (script, runtime, owner...).
    pub spec: JobSpec,
    /// Compute hosts; index 0 is the mother superior.
    pub compute: Vec<HostId>,
    /// Static accelerator hosts per compute node.
    pub accs: Vec<Vec<HostId>>,
}

/// Server -> mother superior: run this job.
#[derive(Clone)]
pub struct SendJob {
    /// Launch information.
    pub launch: JobLaunch,
}

/// Mother superior -> sister mom: `JOIN_JOB`.
#[derive(Clone)]
pub struct JoinJob {
    /// Launch information (sisters keep the full picture, as in TORQUE).
    pub launch: JobLaunch,
    /// Where to acknowledge.
    pub reply: Address,
}

/// Sister -> mother superior: join complete.
#[derive(Clone)]
pub struct JoinAck {
    /// The joined job.
    pub job: JobId,
    /// The acknowledging host.
    pub host: HostId,
}

/// Mother superior -> server: job script started.
#[derive(Clone)]
pub struct JobStarted {
    /// The job.
    pub job: JobId,
    /// The reporting mother superior.
    pub from: HostId,
    /// Echo of [`JobLaunch::incarnation`]; stale incarnations are ignored.
    pub incarnation: u32,
}

/// Server -> mother superior: associate dynamically allocated
/// accelerators with the job (triggers `DYNJOIN_JOB`s).
#[derive(Clone)]
pub struct DynJoinCmd {
    /// The job.
    pub job: JobId,
    /// Server token of the dynamic request (echoed in [`DynReady`]).
    pub token: u64,
    /// The set handle.
    pub client_id: ClientId,
    /// The requesting compute node.
    pub cn: HostId,
    /// The new accelerator hosts.
    pub accs: Vec<HostId>,
}

/// Mother superior -> new accelerator mom: `DYNJOIN_JOB`.
#[derive(Clone)]
pub struct DynJoinJob {
    /// The job.
    pub job: JobId,
    /// Full launch info (so late joiners know the job).
    pub launch: JobLaunch,
    /// Where to acknowledge.
    pub reply: Address,
}

/// New mom -> mother superior: dynamic join complete.
#[derive(Clone)]
pub struct DynJoinAck {
    /// The job.
    pub job: JobId,
    /// The acknowledging host.
    pub host: HostId,
}

/// Mother superior -> existing sisters: the job's resource set changed
/// (additions or removals); keep your database current (§III-D).
#[derive(Clone)]
pub struct UpdateJobRes {
    /// The job.
    pub job: JobId,
    /// Hosts added to the job.
    pub added: Vec<HostId>,
    /// Hosts removed from the job.
    pub removed: Vec<HostId>,
}

/// Mother superior -> server: the dynamic set has joined; the client can
/// be answered.
#[derive(Clone)]
pub struct DynReady {
    /// The job.
    pub job: JobId,
    /// Echo of [`DynJoinCmd::token`].
    pub token: u64,
}

/// Server -> mother superior: disassociate a dynamic set
/// (triggers `DISJOIN_JOB`s).
#[derive(Clone)]
pub struct DisjoinCmd {
    /// The job.
    pub job: JobId,
    /// The set being released.
    pub client_id: ClientId,
    /// The hosts to disassociate.
    pub accs: Vec<HostId>,
    /// Cores held per host (0 = exclusive accelerator node).
    pub ppn: u32,
}

/// Mother superior -> released mom: `DISJOIN_JOB`.
#[derive(Clone)]
pub struct DisjoinJob {
    /// The job.
    pub job: JobId,
    /// Where to acknowledge.
    pub reply: Address,
}

/// Released mom -> mother superior: disassociation complete (local tasks
/// killed, resources free).
#[derive(Clone)]
pub struct DisjoinAck {
    /// The job.
    pub job: JobId,
    /// The acknowledging host.
    pub host: HostId,
}

/// Mother superior -> server: a dynamic set has been fully released.
#[derive(Clone)]
pub struct FreeDone {
    /// The job.
    pub job: JobId,
    /// The released set (server frees its nodes now).
    pub set: DynSet,
}

/// Application task -> mother superior: this compute node's part of the
/// script finished.
#[derive(Clone)]
pub struct TaskDone {
    /// The job.
    pub job: JobId,
    /// Which compute node finished (index into `compute`).
    pub node_index: usize,
}

/// Mother superior -> application task: [`TaskDone`] received — stop
/// retransmitting. Only sent when a retry policy is active.
#[derive(Clone)]
pub struct TaskDoneAck {
    /// The job.
    pub job: JobId,
    /// Echo of [`TaskDone::node_index`].
    pub node_index: usize,
}

/// Mother superior -> server: the whole job script finished.
#[derive(Clone)]
pub struct JobExit {
    /// The job.
    pub job: JobId,
    /// The reporting mother superior (the server acks back to it when a
    /// retry policy is active).
    pub from: HostId,
    /// Echo of [`JobLaunch::incarnation`]; stale incarnations are ignored.
    pub incarnation: u32,
    /// True if the batch system killed the job for exceeding its
    /// walltime estimate (TORQUE's walltime enforcement).
    pub timed_out: bool,
}

/// Server -> mother superior: [`JobExit`] received — stop retransmitting.
/// Only sent when a retry policy is active.
#[derive(Clone)]
pub struct JobExitAck {
    /// The job.
    pub job: JobId,
}

/// Server/mother superior -> mom: tear the job down (job end or qdel).
#[derive(Clone)]
pub struct CleanupJob {
    /// The job.
    pub job: JobId,
    /// The incarnation being torn down. A mom running a **newer**
    /// incarnation ignores the cleanup: under reordering, a reclaim-time
    /// cleanup for a dead incarnation must not kill its relaunched
    /// successor.
    pub incarnation: u32,
}

/// Mom -> application task process: the job was cancelled; finish up.
/// Delivery is cooperative — tasks observe it via
/// [`JobCtx::killed`](crate::mom::JobCtx::killed) or
/// [`JobCtx::sleep_interruptible`](crate::mom::JobCtx::sleep_interruptible).
#[derive(Clone)]
pub struct TaskKill {
    /// The cancelled job.
    pub job: JobId,
}

/// Admin / health monitor -> server: mark a node offline (failed or
/// drained) or back online. Offline nodes are hidden from the scheduler.
#[derive(Clone)]
pub struct SetNodeOffline {
    /// The node.
    pub host: HostId,
    /// True = offline.
    pub offline: bool,
}

/// Health monitor -> mom: liveness probe.
#[derive(Clone)]
pub struct MomPing {
    /// Probe sequence number.
    pub seq: u64,
    /// Where to reply.
    pub reply: Address,
}

/// Mom -> health monitor: liveness reply.
#[derive(Clone)]
pub struct MomPong {
    /// Echoed sequence number.
    pub seq: u64,
    /// The replying host.
    pub host: HostId,
}
