//! Node health monitoring — the fault-tolerance direction the paper
//! names as future work (§VI). A monitor on the head node pings every
//! mom periodically; after a configurable number of missed replies the
//! node is reported offline to the server (hidden from the scheduler),
//! and reported back online when it responds again.

use std::collections::BTreeMap;

use darms_net::{Address, HostId, Network};
use darms_sim::{Actor, Ctx, Envelope, SimDuration};

use crate::proto::{MomPing, MomPong, SetNodeOffline};
use crate::{mom_addr, server_addr};

/// Monitor configuration.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Ping period.
    pub interval: SimDuration,
    /// Consecutive missed pings before a node is declared down.
    pub miss_threshold: u32,
    /// Wire size of probes.
    pub ctl_bytes: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig { interval: SimDuration::from_secs(2), miss_threshold: 2, ctl_bytes: 64 }
    }
}

struct NodeHealth {
    misses: u32,
    marked_offline: bool,
    /// Sequence of the last pong received.
    last_pong: u64,
}

/// The health-monitor actor (runs on the head node).
pub struct HealthMonitor {
    net: Network,
    head: HostId,
    my_addr: Address,
    config: MonitorConfig,
    nodes: BTreeMap<HostId, NodeHealth>,
    watched: Vec<HostId>,
    seq: u64,
}

const TOKEN_TICK: u64 = 1;

impl HealthMonitor {
    /// Create a monitor for the given hosts. `my_addr` must be bound to
    /// this actor by the cluster builder.
    pub fn new(
        net: Network,
        head: HostId,
        my_addr: Address,
        watched: Vec<HostId>,
        config: MonitorConfig,
    ) -> Self {
        let nodes = watched
            .iter()
            .map(|&h| (h, NodeHealth { misses: 0, marked_offline: false, last_pong: 0 }))
            .collect();
        HealthMonitor { net, head, my_addr, config, nodes, watched, seq: 0 }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        // Evaluate the previous round: any node that did not answer the
        // last probe takes a miss.
        let prev_seq = self.seq;
        if prev_seq > 0 {
            let watched = self.watched.clone();
            for h in watched {
                let node = self.nodes.get_mut(&h).expect("watched node");
                if node.last_pong < prev_seq {
                    node.misses += 1;
                } else {
                    node.misses = 0;
                    if node.marked_offline {
                        node.marked_offline = false;
                        ctx.trace(format!("host{} is back; reporting online", h.index()));
                        self.report(ctx, h, false);
                    }
                }
                let node = self.nodes.get_mut(&h).expect("watched node");
                if node.misses >= self.config.miss_threshold && !node.marked_offline {
                    node.marked_offline = true;
                    ctx.trace(format!(
                        "host{} missed {} pings; reporting offline",
                        h.index(),
                        node.misses
                    ));
                    self.report(ctx, h, true);
                }
            }
        }
        // Next round of probes. Sends to down hosts fail silently at the
        // network layer — exactly a missed ping.
        self.seq += 1;
        let seq = self.seq;
        for h in self.watched.clone() {
            let ping = MomPing { seq, reply: self.my_addr };
            let bytes = self.config.ctl_bytes;
            let _ = self.net.send_from_ctx(ctx, self.head, mom_addr(h), ping, bytes);
        }
        ctx.set_timer(self.config.interval, TOKEN_TICK);
    }

    fn report(&mut self, ctx: &mut Ctx<'_>, host: HostId, offline: bool) {
        let bytes = self.config.ctl_bytes;
        let to = server_addr(self.head);
        ctx.metrics().counter_inc(if offline {
            "monitor.offline_reports"
        } else {
            "monitor.online_reports"
        });
        self.net.send_from_ctx(ctx, self.head, to, SetNodeOffline { host, offline }, bytes);
    }
}

impl Actor for HealthMonitor {
    fn name(&self) -> &str {
        "health-monitor"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.config.interval, TOKEN_TICK);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, env: Envelope) {
        if let Ok(pong) = env.downcast::<MomPong>() {
            if let Some(node) = self.nodes.get_mut(&pong.host) {
                node.last_pong = node.last_pong.max(pong.seq);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_TICK {
            self.tick(ctx);
        }
    }
}
