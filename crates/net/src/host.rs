//! Host and address types for the simulated cluster.

use std::fmt;
use std::sync::Arc;

/// Identifier of a host in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub(crate) usize);

impl HostId {
    /// Raw index (stable for the lifetime of the cluster).
    pub fn index(self) -> usize {
        self.0
    }

    /// Fabricate an id from a raw index. Only meaningful for ids that the
    /// network actually handed out; intended for tests and serialisation.
    pub fn from_raw(index: usize) -> Self {
        HostId(index)
    }
}

/// Role a host plays in the DAC architecture. The network layer treats all
/// hosts alike; the label exists so the RMS and experiments can partition
/// the cluster.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HostKind {
    /// Runs `pbs_server` and the scheduler (also the front end).
    Head,
    /// A compute node (runs a `pbs_mom` and user applications).
    Compute,
    /// A network-attached accelerator (host CPU + device, runs a mom and
    /// accelerator daemons).
    Accelerator,
    /// Anything else.
    Generic,
}

impl fmt::Display for HostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HostKind::Head => "head",
            HostKind::Compute => "compute",
            HostKind::Accelerator => "accelerator",
            HostKind::Generic => "generic",
        };
        f.write_str(s)
    }
}

/// Metadata for one host.
#[derive(Clone, Debug)]
pub struct Host {
    /// Unique hostname, e.g. `node03`. Interned: cloning the entry (or
    /// asking the network for the name) is a refcount bump.
    pub name: Arc<str>,
    /// Cluster role.
    pub kind: HostKind,
    /// True if the host has been failed by fault injection.
    pub down: bool,
}

/// A well-known or ephemeral service port on a host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Port(pub u32);

/// Well-known ports used by the batch system (mirrors the TORQUE defaults
/// in spirit, not in numeric value).
pub mod ports {
    use super::Port;
    /// `pbs_server` listens here on the head node.
    pub const PBS_SERVER: Port = Port(15001);
    /// Every `pbs_mom` listens here on its host.
    pub const PBS_MOM: Port = Port(15002);
    /// The Maui-like scheduler listens here on the head node.
    pub const SCHEDULER: Port = Port(15004);
    /// The health monitor listens here on the head node.
    pub const MONITOR: Port = Port(15005);
    /// First ephemeral port handed out by [`Network::bind_auto`](crate::Network::bind_auto).
    pub const EPHEMERAL_BASE: u32 = 40000;
}

/// A network address: `(host, port)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Address {
    /// Destination host.
    pub host: HostId,
    /// Destination service port.
    pub port: Port,
}

impl Address {
    /// Construct an address.
    pub fn new(host: HostId, port: Port) -> Self {
        Address { host, port }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}:{}", self.host.0, self.port.0)
    }
}
