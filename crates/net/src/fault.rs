//! Deterministic fault injection: a seeded, per-link [`FaultPlan`]
//! evaluated at `Network::send` time.
//!
//! The plan describes *what can go wrong* on each directed link — drop,
//! duplicate, delay jitter, reorder window — plus time-windowed
//! partitions (messages crossing a group boundary are dropped) and host
//! outages (a host is network-isolated: fail-stop as far as the
//! protocol can observe). Everything is driven by one `SmallRng` seeded
//! from the plan's `u64` seed, so the full failure schedule of a run is
//! reproducible byte-for-byte from that seed.
//!
//! Faults are **silent**: the sender's [`crate::SendOutcome`] still
//! reads `Sent`, exactly as a UDP sender cannot observe a drop on the
//! wire. Only loopback traffic (`from == to.host`) is exempt — local
//! IPC does not traverse the interconnect.
//!
//! [`RetryPolicy`] is the companion knob: the capped-exponential-backoff
//! budget the RMS control plane and DAC front-end use to survive an
//! installed plan. With no plan and no policy the hot path is unchanged
//! (see the `bench-check` target).

use darms_sim::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use crate::host::HostId;

/// Per-link fault probabilities and delay knobs. All fields default to
/// "no fault".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop: f64,
    /// Probability in `[0, 1]` that a message is delivered twice (the
    /// copy takes an independent jitter draw).
    pub duplicate: f64,
    /// Maximum extra delay added to every message, drawn uniformly from
    /// `[0, jitter]`.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is additionally held back
    /// by up to [`LinkFaults::reorder_window`], letting later messages
    /// overtake it.
    pub reorder: f64,
    /// Maximum hold-back applied to reordered messages.
    pub reorder_window: SimDuration,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            jitter: SimDuration::ZERO,
            reorder: 0.0,
            reorder_window: SimDuration::ZERO,
        }
    }
}

impl LinkFaults {
    /// True if every knob is at its "no fault" default.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.jitter == SimDuration::ZERO
            && self.reorder == 0.0
    }
}

/// A transient network partition: while active, messages crossing the
/// boundary between `group` and the rest of the cluster are dropped.
/// Traffic within the group (and within the complement) is unaffected.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Hosts on one side of the cut.
    pub group: Vec<HostId>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive).
    pub until: SimTime,
}

/// A scheduled host outage: while active the host is network-isolated —
/// every message from or to it is dropped. The host "restarts" at
/// `until` with its state intact (a NIC/switch-port failure; fail-stop
/// as far as peers can observe).
#[derive(Clone, Copy, Debug)]
pub struct Outage {
    /// The isolated host.
    pub host: HostId,
    /// Outage start (inclusive).
    pub from: SimTime,
    /// Outage end (exclusive).
    pub until: SimTime,
}

/// A complete, seeded fault schedule for one run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG (independent of the engine and
    /// latency RNG streams).
    pub seed: u64,
    /// Faults applied to every cross-host link without an entry in
    /// [`FaultPlan::links`].
    pub default_link: LinkFaults,
    /// Per-directed-link overrides.
    pub links: Vec<((HostId, HostId), LinkFaults)>,
    /// Time-windowed partitions.
    pub partitions: Vec<Partition>,
    /// Time-windowed host outages.
    pub outages: Vec<Outage>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// Set the fault profile for every link without an override.
    pub fn with_default_link(mut self, lf: LinkFaults) -> Self {
        self.default_link = lf;
        self
    }

    /// Override the fault profile of one directed link.
    pub fn with_link(mut self, from: HostId, to: HostId, lf: LinkFaults) -> Self {
        self.links.push(((from, to), lf));
        self
    }

    /// Add a partition separating `group` from the rest of the cluster
    /// during `[from, until)`.
    pub fn with_partition(mut self, group: Vec<HostId>, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(Partition { group, from, until });
        self
    }

    /// Add an outage isolating `host` during `[from, until)`.
    pub fn with_outage(mut self, host: HostId, from: SimTime, until: SimTime) -> Self {
        self.outages.push(Outage { host, from, until });
        self
    }
}

/// Retry budget for request/reply exchanges over a faulty network:
/// capped exponential backoff. Stored on the [`crate::Network`] so every
/// control-plane layer (IFL, server↔mom, DAC front-end) shares one
/// policy; `None` (the default) disables all retry machinery and keeps
/// the failure-free fast path byte-identical to a network without the
/// fault layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per logical request before giving up (≥ 1).
    pub max_attempts: u32,
    /// Timeout for the first attempt; doubled per retry.
    pub base_timeout: SimDuration,
    /// Upper bound on the per-attempt timeout.
    pub max_timeout: SimDuration,
    /// Period of the server/mom retransmit ticks that re-drive one-way
    /// commands (job launch, dyn join, disjoin, job exit).
    pub retransmit: SimDuration,
}

impl RetryPolicy {
    /// The default budget used by the chaos harness: 8 attempts,
    /// 500 ms → 8 s capped backoff, 1 s retransmit tick.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_timeout: SimDuration::from_millis(500),
            max_timeout: SimDuration::from_secs(8),
            retransmit: SimDuration::from_secs(1),
        }
    }

    /// Timeout for attempt `i` (0-based): `base * 2^i`, capped.
    pub fn timeout_for(&self, attempt: u32) -> SimDuration {
        let mut t = self.base_timeout;
        for _ in 0..attempt {
            t = t + t;
            if t >= self.max_timeout {
                return self.max_timeout;
            }
        }
        t.min(self.max_timeout)
    }
}

/// The verdict for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver with `extra` delay on top of the latency model; when
    /// `duplicate` is set, deliver a second copy with that extra delay.
    Deliver { extra: SimDuration, duplicate: Option<SimDuration> },
    /// Silently drop; the label names the cause (`drop`, `partition`,
    /// `outage`) for traces.
    Drop(&'static str),
}

/// Installed plan plus its RNG and a link-override index.
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SmallRng,
    link_ix: BTreeMap<(HostId, HostId), usize>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let link_ix = plan.links.iter().enumerate().map(|(i, &(key, _))| (key, i)).collect();
        let rng = SmallRng::seed_from_u64(plan.seed);
        FaultState { plan, rng, link_ix }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Judge one cross-host message. Draws from the fault RNG only for
    /// the probabilistic link faults, so partition/outage windows do not
    /// perturb the random stream.
    pub(crate) fn judge(&mut self, from: HostId, to: HostId, now: SimTime) -> Verdict {
        for o in &self.plan.outages {
            if (o.host == from || o.host == to) && now >= o.from && now < o.until {
                return Verdict::Drop("outage");
            }
        }
        for pt in &self.plan.partitions {
            if now >= pt.from && now < pt.until {
                let a = pt.group.contains(&from);
                let b = pt.group.contains(&to);
                if a != b {
                    return Verdict::Drop("partition");
                }
            }
        }
        let lf = match self.link_ix.get(&(from, to)) {
            Some(&i) => self.plan.links[i].1,
            None => self.plan.default_link,
        };
        if lf.is_none() {
            return Verdict::Deliver { extra: SimDuration::ZERO, duplicate: None };
        }
        if lf.drop > 0.0 && self.rng.gen::<f64>() < lf.drop {
            return Verdict::Drop("drop");
        }
        let mut extra = self.draw_jitter(lf.jitter);
        if lf.reorder > 0.0 && self.rng.gen::<f64>() < lf.reorder {
            extra += self.draw_jitter(lf.reorder_window);
        }
        let duplicate = if lf.duplicate > 0.0 && self.rng.gen::<f64>() < lf.duplicate {
            Some(self.draw_jitter(lf.jitter))
        } else {
            None
        };
        Verdict::Deliver { extra, duplicate }
    }

    fn draw_jitter(&mut self, max: SimDuration) -> SimDuration {
        let nanos = max.as_nanos();
        if nanos == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.rng.gen_range(0..=nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn empty_plan_never_faults() {
        let mut fs = FaultState::new(FaultPlan::new(1));
        for i in 0..100 {
            let v = fs.judge(HostId(0), HostId(1), t(i));
            assert_eq!(v, Verdict::Deliver { extra: SimDuration::ZERO, duplicate: None });
        }
    }

    #[test]
    fn same_seed_same_verdict_sequence() {
        let plan = FaultPlan::new(42).with_default_link(LinkFaults {
            drop: 0.3,
            duplicate: 0.3,
            jitter: SimDuration::from_millis(5),
            reorder: 0.3,
            reorder_window: SimDuration::from_millis(50),
        });
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for i in 0..500 {
            let va = a.judge(HostId(i % 3), HostId(3), t(i as u64));
            let vb = b.judge(HostId(i % 3), HostId(3), t(i as u64));
            assert_eq!(va, vb, "verdicts diverged at message {i}");
        }
    }

    #[test]
    fn partition_drops_only_crossing_messages_inside_window() {
        let plan = FaultPlan::new(7).with_partition(vec![HostId(0), HostId(1)], t(10), t(20));
        let mut fs = FaultState::new(plan);
        // Before the window: crossing traffic flows.
        assert!(matches!(fs.judge(HostId(0), HostId(2), t(5)), Verdict::Deliver { .. }));
        // Inside: crossing traffic is cut, intra-group traffic flows.
        assert_eq!(fs.judge(HostId(0), HostId(2), t(10)), Verdict::Drop("partition"));
        assert_eq!(fs.judge(HostId(2), HostId(1), t(15)), Verdict::Drop("partition"));
        assert!(matches!(fs.judge(HostId(0), HostId(1), t(15)), Verdict::Deliver { .. }));
        assert!(matches!(fs.judge(HostId(2), HostId(3), t(15)), Verdict::Deliver { .. }));
        // End is exclusive: healed at exactly `until`.
        assert!(matches!(fs.judge(HostId(0), HostId(2), t(20)), Verdict::Deliver { .. }));
    }

    #[test]
    fn outage_isolates_host_both_directions() {
        let plan = FaultPlan::new(7).with_outage(HostId(1), t(10), t(20));
        let mut fs = FaultState::new(plan);
        assert!(matches!(fs.judge(HostId(0), HostId(1), t(9)), Verdict::Deliver { .. }));
        assert_eq!(fs.judge(HostId(0), HostId(1), t(10)), Verdict::Drop("outage"));
        assert_eq!(fs.judge(HostId(1), HostId(0), t(19)), Verdict::Drop("outage"));
        assert!(matches!(fs.judge(HostId(2), HostId(0), t(15)), Verdict::Deliver { .. }));
        assert!(matches!(fs.judge(HostId(0), HostId(1), t(20)), Verdict::Deliver { .. }));
    }

    #[test]
    fn certain_duplicate_always_duplicates() {
        let plan = FaultPlan::new(3).with_default_link(LinkFaults {
            duplicate: 1.0,
            jitter: SimDuration::from_millis(2),
            ..Default::default()
        });
        let mut fs = FaultState::new(plan);
        for i in 0..50 {
            match fs.judge(HostId(0), HostId(1), t(i)) {
                Verdict::Deliver { duplicate: Some(_), .. } => {}
                v => panic!("expected duplicate, got {v:?}"),
            }
        }
    }

    #[test]
    fn link_override_beats_default() {
        let plan = FaultPlan::new(3)
            .with_default_link(LinkFaults { drop: 1.0, ..Default::default() })
            .with_link(HostId(0), HostId(1), LinkFaults::default());
        let mut fs = FaultState::new(plan);
        assert!(matches!(fs.judge(HostId(0), HostId(1), t(0)), Verdict::Deliver { .. }));
        assert_eq!(fs.judge(HostId(1), HostId(0), t(0)), Verdict::Drop("drop"));
    }

    #[test]
    fn retry_policy_backoff_caps() {
        let p = RetryPolicy::standard();
        assert_eq!(p.timeout_for(0), SimDuration::from_millis(500));
        assert_eq!(p.timeout_for(1), SimDuration::from_secs(1));
        assert_eq!(p.timeout_for(3), SimDuration::from_secs(4));
        assert_eq!(p.timeout_for(4), SimDuration::from_secs(8));
        assert_eq!(p.timeout_for(10), SimDuration::from_secs(8));
    }
}
