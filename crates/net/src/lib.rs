//! # darms-net — the simulated cluster interconnect
//!
//! Models the hardware substrate of the paper's testbed: a set of hosts
//! (head node, compute nodes, network-attached accelerators) joined by an
//! interconnect with configurable latency, bandwidth and jitter
//! ([`LatencyModel`]), a service registry mapping `(host, port)` addresses
//! to simulation endpoints, and fault injection (host failures, packet
//! loss) for robustness tests.
//!
//! Everything above this crate (the MPI runtime, TORQUE-like RMS, the
//! accelerator daemons) communicates exclusively through [`Network`],
//! which schedules deliveries on the [`darms_sim`] event queue.
//!
//! ```
//! use darms_net::{Address, HostKind, LatencyModel, Network, Port};
//! use darms_sim::Engine;
//!
//! let mut sim = Engine::with_seed(1);
//! let net = Network::new(LatencyModel::ideal(), 1);
//! let h1 = net.add_host("cn01", HostKind::Compute);
//! let h2 = net.add_host("ac01", HostKind::Accelerator);
//! let rx = sim.spawn_process("service", |p| async move {
//!     let (n, _) = p.recv_as::<u32>().await;
//!     assert_eq!(n, 7);
//! });
//! let addr = Address::new(h2, Port(9000));
//! net.bind(addr, rx.into());
//! let n2 = net.clone();
//! sim.spawn_process("client", move |p| async move {
//!     assert!(n2.send_from_proc(&p, h1, addr, 7u32, 64).is_sent());
//! });
//! let stats = sim.run();
//! assert_eq!(stats.process_panics, 0);
//! ```

#![warn(missing_docs)]

mod fault;
mod host;
mod latency;
mod network;

pub use fault::{FaultPlan, LinkFaults, Outage, Partition, RetryPolicy};
pub use host::{ports, Address, Host, HostId, HostKind, Port};
pub use latency::LatencyModel;
pub use network::{NetStats, Network, SendOutcome};
