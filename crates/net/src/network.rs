//! The cluster network: host registry, service bindings, message routing
//! with the latency model, fault injection, and traffic statistics.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use darms_sim::{Ctx, Endpoint, Envelope, MetricsRegistry, Proc, SimDuration, SimTime, Tracer};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::{FaultPlan, FaultState, RetryPolicy, Verdict};
use crate::host::{ports, Address, Host, HostId, HostKind, Port};
use crate::latency::LatencyModel;

/// Traffic counters, readable after (or during) a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages successfully handed to the event queue.
    pub messages: u64,
    /// Payload bytes carried by those messages.
    pub bytes: u64,
    /// Messages dropped (down host, missing binding, or injected loss).
    pub dropped: u64,
}

struct NetState {
    hosts: Vec<Host>,
    bindings: BTreeMap<Address, Endpoint>,
    next_ephemeral: BTreeMap<HostId, u32>,
    latency: LatencyModel,
    rng: SmallRng,
    drop_prob: f64,
    stats: NetStats,
    /// Per-link `(from, to)` traffic counters.
    links: BTreeMap<(HostId, HostId), NetStats>,
    /// Optional shared registry mirror of the traffic counters
    /// (`net.messages`, `net.bytes`, `net.dropped`).
    metrics: Option<MetricsRegistry>,
    /// Installed chaos plan; `None` keeps the send path byte-identical
    /// to a fault-free network.
    fault: Option<FaultState>,
    /// Shared retry budget advertised to the control-plane layers
    /// (IFL, server/mom retransmit ticks, DAC front-end).
    control_retry: Option<RetryPolicy>,
    /// Structured tracer for fault decisions (`net.fault` instants).
    tracer: Option<Tracer>,
}

impl NetState {
    fn note_dropped(&mut self, from: HostId, to: HostId) {
        self.stats.dropped += 1;
        self.links.entry((from, to)).or_default().dropped += 1;
        if let Some(m) = &self.metrics {
            m.counter_inc("net.dropped");
        }
    }
}

/// Cloneable handle to the shared cluster network.
#[derive(Clone)]
pub struct Network {
    state: Arc<Mutex<NetState>>,
}

/// Outcome of a send attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// Message scheduled for delivery after the returned delay.
    Sent(SimDuration),
    /// Source or destination host is down.
    HostDown,
    /// Nothing is bound at the destination address.
    NoBinding,
    /// Message lost to injected packet loss.
    Lost,
}

impl SendOutcome {
    /// True if the message was scheduled.
    pub fn is_sent(&self) -> bool {
        matches!(self, SendOutcome::Sent(_))
    }
}

impl Network {
    /// Create an empty network with the given latency model. The jitter
    /// and loss RNG is seeded independently of the engine RNG so that the
    /// two sample streams do not perturb each other.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        Network {
            state: Arc::new(Mutex::new(NetState {
                hosts: Vec::new(),
                bindings: BTreeMap::new(),
                next_ephemeral: BTreeMap::new(),
                latency,
                rng: SmallRng::seed_from_u64(seed),
                drop_prob: 0.0,
                stats: NetStats::default(),
                links: BTreeMap::new(),
                metrics: None,
                fault: None,
                control_retry: None,
                tracer: None,
            })),
        }
    }

    /// Install a deterministic chaos plan; replaces any previous plan
    /// (resetting the fault RNG to the plan's seed). Callable mid-run
    /// for targeted tests.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().fault = Some(FaultState::new(plan));
    }

    /// Remove the installed chaos plan, restoring the fault-free path.
    pub fn clear_fault_plan(&self) {
        self.state.lock().fault = None;
    }

    /// The installed chaos plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.state.lock().fault.as_ref().map(|f| f.plan().clone())
    }

    /// Set (or clear) the shared control-plane retry budget.
    pub fn set_retry_policy(&self, policy: Option<RetryPolicy>) {
        self.state.lock().control_retry = policy;
    }

    /// The shared control-plane retry budget, if one is set.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.state.lock().control_retry
    }

    /// Emit `net.fault` instants for every fault-layer decision into `t`.
    pub fn attach_tracer(&self, t: Tracer) {
        self.state.lock().tracer = Some(t);
    }

    /// Mirror traffic counters into `m` (`net.messages`, `net.bytes`,
    /// `net.dropped`) from now on.
    pub fn attach_metrics(&self, m: MetricsRegistry) {
        self.state.lock().metrics = Some(m);
    }

    /// Register a host; returns its id.
    pub fn add_host(&self, name: impl Into<String>, kind: HostKind) -> HostId {
        let mut s = self.state.lock();
        let id = HostId(s.hosts.len());
        s.hosts.push(Host { name: name.into().into(), kind, down: false });
        id
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.state.lock().hosts.len()
    }

    /// Metadata of a host (cheap: the name is interned). Prefer the
    /// field-specific accessors below when only one attribute is needed.
    pub fn host(&self, id: HostId) -> Host {
        self.state.lock().hosts[id.0].clone()
    }

    /// Interned name of a host — a refcount bump, no `String` clone.
    pub fn host_name(&self, id: HostId) -> Arc<str> {
        self.state.lock().hosts[id.0].name.clone()
    }

    /// Role of a host, without cloning the entry.
    pub fn host_kind(&self, id: HostId) -> HostKind {
        self.state.lock().hosts[id.0].kind
    }

    /// Liveness of a host, without cloning the entry.
    pub fn host_is_down(&self, id: HostId) -> bool {
        self.state.lock().hosts[id.0].down
    }

    /// All hosts of a given kind.
    pub fn hosts_of_kind(&self, kind: HostKind) -> Vec<HostId> {
        let s = self.state.lock();
        (0..s.hosts.len()).filter(|&i| s.hosts[i].kind == kind).map(HostId).collect()
    }

    /// Fail or recover a host. Messages from/to a down host are dropped.
    pub fn set_host_down(&self, id: HostId, down: bool) {
        self.state.lock().hosts[id.0].down = down;
    }

    /// Probability in `[0, 1]` that any message is silently lost.
    pub fn set_drop_probability(&self, p: f64) {
        self.state.lock().drop_prob = p.clamp(0.0, 1.0);
    }

    /// Bind an endpoint at a fixed address (e.g. a daemon's well-known
    /// port). Re-binding an address replaces the previous binding.
    pub fn bind(&self, addr: Address, ep: Endpoint) {
        self.state.lock().bindings.insert(addr, ep);
    }

    /// Bind at an ephemeral port on `host`; returns the full address.
    pub fn bind_auto(&self, host: HostId, ep: Endpoint) -> Address {
        let mut s = self.state.lock();
        let next = s.next_ephemeral.entry(host).or_insert(ports::EPHEMERAL_BASE);
        let port = Port(*next);
        *next += 1;
        let addr = Address::new(host, port);
        s.bindings.insert(addr, ep);
        addr
    }

    /// Remove a binding.
    pub fn unbind(&self, addr: Address) {
        self.state.lock().bindings.remove(&addr);
    }

    /// Resolve an address to its bound endpoint.
    pub fn resolve(&self, addr: Address) -> Option<Endpoint> {
        self.state.lock().bindings.get(&addr).copied()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.state.lock().stats
    }

    /// Traffic counters for one directed link.
    pub fn link_stats(&self, from: HostId, to: HostId) -> NetStats {
        self.state.lock().links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// All directed links with traffic, sorted by `(from, to)` (the
    /// `BTreeMap` key order).
    pub fn links(&self) -> Vec<((HostId, HostId), NetStats)> {
        let s = self.state.lock();
        s.links.iter().map(|(&k, &st)| (k, st)).collect()
    }

    /// The latency model in effect (read-only copy; layers above use it
    /// to reason about overlap, e.g. pipelined transfers).
    pub fn latency_model(&self) -> LatencyModel {
        self.state.lock().latency.clone()
    }

    /// Compute the delay for a message and update counters, or decide to
    /// drop it.
    ///
    /// `now` is consulted lazily: only when a [`FaultPlan`] is installed
    /// and the message crosses hosts does the fault layer need the
    /// virtual clock, so the fault-free path never touches the kernel.
    /// `can_dup` says whether the caller is able to deliver a duplicate
    /// copy (the envelope path cannot clone its payload).
    fn route(
        &self,
        from: HostId,
        to: Address,
        bytes: u64,
        now: impl FnOnce() -> SimTime,
        can_dup: bool,
    ) -> Route {
        let mut s = self.state.lock();
        if s.hosts.get(from.0).is_none_or(|h| h.down)
            || s.hosts.get(to.host.0).is_none_or(|h| h.down)
        {
            s.note_dropped(from, to.host);
            return Route::Fail(SendOutcome::HostDown);
        }
        let Some(ep) = s.bindings.get(&to).copied() else {
            s.note_dropped(from, to.host);
            return Route::Fail(SendOutcome::NoBinding);
        };
        if s.drop_prob > 0.0 {
            let roll: f64 = rand::Rng::gen(&mut s.rng);
            if roll < s.drop_prob {
                s.note_dropped(from, to.host);
                return Route::Fail(SendOutcome::Lost);
            }
        }
        let local = from == to.host;
        // The chaos layer judges cross-host messages only: loopback IPC
        // never touches the interconnect, so head-local control traffic
        // (scheduler, monitor reports) stays reliable by construction.
        let verdict = if !local && s.fault.is_some() {
            let t = now();
            let NetState { fault, tracer, .. } = &mut *s;
            let mut v = fault.as_mut().expect("checked above").judge(from, to.host, t);
            if let Verdict::Deliver { duplicate: d @ Some(_), .. } = &mut v {
                if !can_dup {
                    *d = None;
                }
            }
            if let Some(tr) = tracer {
                let kind = match v {
                    Verdict::Drop(reason) => Some(reason),
                    Verdict::Deliver { duplicate: Some(_), .. } => Some("duplicate"),
                    Verdict::Deliver { .. } => None,
                };
                if let Some(kind) = kind {
                    tr.instant(t, darms_sim::TraceSource::Kernel, "net", "net.fault", || {
                        format!("{{\"kind\":\"{kind}\",\"from\":{},\"to\":{}}}", from.0, to.host.0)
                    });
                }
            }
            v
        } else {
            Verdict::Deliver { extra: SimDuration::ZERO, duplicate: None }
        };
        let (extra, duplicate) = match verdict {
            Verdict::Drop(_) => {
                s.note_dropped(from, to.host);
                return Route::SilentDrop;
            }
            Verdict::Deliver { extra, duplicate } => (extra, duplicate),
        };
        // Split-borrow the state so the latency model is consulted in
        // place — no per-message clone of the model.
        let NetState { latency, rng, stats, links, metrics, .. } = &mut *s;
        let base = latency.delay(local, bytes, rng);
        let delay = base + extra;
        let copies = 1 + duplicate.is_some() as u64;
        stats.messages += copies;
        stats.bytes += bytes * copies;
        let link = links.entry((from, to.host)).or_default();
        link.messages += copies;
        link.bytes += bytes * copies;
        if let Some(m) = metrics {
            m.counter_add("net.messages", copies);
            m.counter_add("net.bytes", bytes * copies);
        }
        Route::Deliver { ep, delay, dup: duplicate.map(|e| base + e) }
    }

    /// Send `payload` from a process residing on `from` to the service at
    /// `to`, modelling a wire size of `bytes`.
    ///
    /// `Clone` lets the fault layer deliver duplicate copies; with no
    /// [`FaultPlan`] installed the payload is never cloned. Fault-layer
    /// drops are *silent* — the outcome still reads `Sent`, like a UDP
    /// sender that cannot observe loss on the wire.
    pub fn send_from_proc<T: Any + Send + Clone>(
        &self,
        p: &Proc,
        from: HostId,
        to: Address,
        payload: T,
        bytes: u64,
    ) -> SendOutcome {
        match self.route(from, to, bytes, || p.now(), true) {
            Route::Deliver { ep, delay, dup } => {
                if let Some(d) = dup {
                    p.send(ep, payload.clone(), d);
                }
                p.send(ep, payload, delay);
                SendOutcome::Sent(delay)
            }
            Route::SilentDrop => SendOutcome::Sent(SimDuration::ZERO),
            Route::Fail(o) => o,
        }
    }

    /// Send `payload` from an actor residing on `from` to the service at
    /// `to`, modelling a wire size of `bytes`. Same fault semantics as
    /// [`Network::send_from_proc`].
    pub fn send_from_ctx<T: Any + Send + Clone>(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        to: Address,
        payload: T,
        bytes: u64,
    ) -> SendOutcome {
        match self.route(from, to, bytes, || ctx.now(), true) {
            Route::Deliver { ep, delay, dup } => {
                if let Some(d) = dup {
                    ctx.send(ep, payload.clone(), d);
                }
                ctx.send(ep, payload, delay);
                SendOutcome::Sent(delay)
            }
            Route::SilentDrop => SendOutcome::Sent(SimDuration::ZERO),
            Route::Fail(o) => o,
        }
    }

    /// Send a pre-built envelope (keeps an existing `src`). An envelope
    /// payload cannot be cloned, so the fault layer never duplicates on
    /// this path (drops and delays still apply).
    pub fn send_env_from_proc(
        &self,
        p: &Proc,
        from: HostId,
        to: Address,
        env: Envelope,
        bytes: u64,
    ) -> SendOutcome {
        match self.route(from, to, bytes, || p.now(), false) {
            Route::Deliver { ep, delay, .. } => {
                p.send_env(ep, env, delay);
                SendOutcome::Sent(delay)
            }
            Route::SilentDrop => SendOutcome::Sent(SimDuration::ZERO),
            Route::Fail(o) => o,
        }
    }
}

/// How a send resolves internally.
enum Route {
    /// Deliver to `ep` after `delay`; when `dup` is set, deliver a
    /// second copy after that delay.
    Deliver { ep: Endpoint, delay: SimDuration, dup: Option<SimDuration> },
    /// The fault layer swallowed the message; the sender still observes
    /// a successful send.
    SilentDrop,
    /// Visible failure (down host, no binding, legacy injected loss).
    Fail(SendOutcome),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkFaults;
    use darms_sim::{Engine, SimTime};

    fn net() -> Network {
        Network::new(LatencyModel::ideal(), 7)
    }

    #[test]
    fn host_registry_and_kinds() {
        let n = net();
        let h = n.add_host("head", HostKind::Head);
        let c = n.add_host("cn01", HostKind::Compute);
        let a = n.add_host("ac01", HostKind::Accelerator);
        assert_eq!(n.host_count(), 3);
        assert_eq!(&*n.host(h).name, "head");
        assert_eq!(&*n.host_name(h), "head");
        assert_eq!(n.host_kind(c), HostKind::Compute);
        assert!(!n.host_is_down(a));
        assert_eq!(n.hosts_of_kind(HostKind::Compute), vec![c]);
        assert_eq!(n.hosts_of_kind(HostKind::Accelerator), vec![a]);
    }

    #[test]
    fn ephemeral_ports_are_unique_per_host() {
        let n = net();
        let h = n.add_host("h", HostKind::Generic);
        let mut sim = Engine::with_seed(1);
        let pid = sim.spawn_process("x", |_| async {});
        let a1 = n.bind_auto(h, pid.into());
        let a2 = n.bind_auto(h, pid.into());
        assert_ne!(a1, a2);
        assert_eq!(n.resolve(a1), Some(Endpoint::Process(pid)));
        n.unbind(a1);
        assert_eq!(n.resolve(a1), None);
        assert_eq!(n.resolve(a2), Some(Endpoint::Process(pid)));
    }

    #[test]
    fn message_crosses_network_with_latency() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        let mut sim = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let rx = sim.spawn_process("rx", move |p| async move {
            let (v, _) = p.recv_as::<u64>().await;
            *o.lock() = Some((v, p.now()));
        });
        let addr = Address::new(h2, Port(9));
        n.bind(addr, rx.into());
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            let outcome = n2.send_from_proc(&p, h1, addr, 123u64, 1_000_000);
            assert!(outcome.is_sent());
        });
        sim.run();
        let (v, at) = out.lock().unwrap();
        assert_eq!(v, 123);
        // ideal model: 50us base + 1ms serialisation
        assert_eq!(at, SimTime::ZERO + SimDuration::from_micros(1050));
        assert_eq!(n.stats().messages, 1);
        assert_eq!(n.stats().bytes, 1_000_000);
    }

    #[test]
    fn down_host_drops_messages() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        let mut sim = Engine::with_seed(1);
        let rx = sim.spawn_process("rx", |p| async move {
            assert!(p.recv_timeout(SimDuration::from_secs(1)).await.is_none());
        });
        let addr = Address::new(h2, Port(1));
        n.bind(addr, rx.into());
        n.set_host_down(h2, true);
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            assert_eq!(n2.send_from_proc(&p, h1, addr, 1u8, 8), SendOutcome::HostDown);
        });
        sim.run();
        assert_eq!(n.stats().dropped, 1);
        assert_eq!(n.stats().messages, 0);
    }

    #[test]
    fn unbound_address_reports_no_binding() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let mut sim = Engine::with_seed(1);
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            let out = n2.send_from_proc(&p, h1, Address::new(h1, Port(404)), 1u8, 8);
            assert_eq!(out, SendOutcome::NoBinding);
        });
        sim.run();
    }

    #[test]
    fn injected_loss_drops_roughly_that_fraction() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        n.set_drop_probability(0.5);
        let mut sim = Engine::with_seed(1);
        let rx = sim.spawn_process("rx", |p| async move {
            loop {
                let _ = p.recv().await;
            }
        });
        let addr = Address::new(h2, Port(1));
        n.bind(addr, rx.into());
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            for _ in 0..400 {
                let _ = n2.send_from_proc(&p, h1, addr, 0u8, 8);
            }
        });
        sim.run();
        let s = n.stats();
        assert_eq!(s.messages + s.dropped, 400);
        assert!(s.dropped > 120 && s.dropped < 280, "dropped={}", s.dropped);
    }

    #[test]
    fn fault_plan_drop_is_silent_to_the_sender() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        n.install_fault_plan(
            FaultPlan::new(9).with_default_link(LinkFaults { drop: 1.0, ..Default::default() }),
        );
        let mut sim = Engine::with_seed(1);
        let rx = sim.spawn_process("rx", |p| async move {
            assert!(p.recv_timeout(SimDuration::from_secs(1)).await.is_none());
        });
        let addr = Address::new(h2, Port(1));
        n.bind(addr, rx.into());
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            // The sender cannot observe the loss.
            assert!(n2.send_from_proc(&p, h1, addr, 7u8, 8).is_sent());
        });
        let stats = sim.run();
        assert_eq!(stats.process_panics, 0);
        assert_eq!(n.stats().dropped, 1);
        assert_eq!(n.stats().messages, 0);
    }

    #[test]
    fn fault_plan_duplicate_delivers_twice_and_loopback_is_exempt() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        n.install_fault_plan(
            FaultPlan::new(9)
                .with_default_link(LinkFaults { duplicate: 1.0, ..Default::default() }),
        );
        let mut sim = Engine::with_seed(1);
        let got = Arc::new(Mutex::new(0u32));
        let g = got.clone();
        let rx = sim.spawn_process("rx", move |p| async move {
            while p.recv_timeout(SimDuration::from_secs(1)).await.is_some() {
                *g.lock() += 1;
            }
        });
        let addr = Address::new(h2, Port(1));
        n.bind(addr, rx.into());
        let local = Address::new(h1, Port(2));
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            n2.bind(local, p.endpoint());
            assert!(n2.send_from_proc(&p, h1, addr, 7u8, 8).is_sent());
            // Loopback traffic is exempt from the plan: one delivery.
            assert!(n2.send_from_proc(&p, h1, local, 7u8, 8).is_sent());
            assert!(p.recv_timeout(SimDuration::from_secs(1)).await.is_some());
            assert!(p.recv_timeout(SimDuration::from_secs(1)).await.is_none());
        });
        let stats = sim.run();
        assert_eq!(stats.process_panics, 0);
        assert_eq!(*got.lock(), 2, "cross-host message must be duplicated");
        assert_eq!(n.stats().messages, 3);
        assert_eq!(n.stats().dropped, 0);
    }

    #[test]
    fn retry_policy_round_trips_and_clears() {
        let n = net();
        assert_eq!(n.retry_policy(), None);
        n.set_retry_policy(Some(RetryPolicy::standard()));
        assert_eq!(n.retry_policy(), Some(RetryPolicy::standard()));
        n.set_retry_policy(None);
        assert_eq!(n.retry_policy(), None);
        n.install_fault_plan(FaultPlan::new(5));
        assert_eq!(n.fault_plan().expect("installed").seed, 5);
        n.clear_fault_plan();
        assert!(n.fault_plan().is_none());
    }

    #[test]
    fn host_down_recovery() {
        let n = net();
        let h = n.add_host("h", HostKind::Compute);
        n.set_host_down(h, true);
        assert!(n.host(h).down);
        n.set_host_down(h, false);
        assert!(!n.host(h).down);
    }
}
