//! The cluster network: host registry, service bindings, message routing
//! with the latency model, fault injection, and traffic statistics.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use darms_sim::{Ctx, Endpoint, Envelope, MetricsRegistry, Proc, SimDuration};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::host::{ports, Address, Host, HostId, HostKind, Port};
use crate::latency::LatencyModel;

/// Traffic counters, readable after (or during) a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages successfully handed to the event queue.
    pub messages: u64,
    /// Payload bytes carried by those messages.
    pub bytes: u64,
    /// Messages dropped (down host, missing binding, or injected loss).
    pub dropped: u64,
}

struct NetState {
    hosts: Vec<Host>,
    bindings: HashMap<Address, Endpoint>,
    next_ephemeral: HashMap<HostId, u32>,
    latency: LatencyModel,
    rng: SmallRng,
    drop_prob: f64,
    stats: NetStats,
    /// Per-link `(from, to)` traffic counters.
    links: HashMap<(HostId, HostId), NetStats>,
    /// Optional shared registry mirror of the traffic counters
    /// (`net.messages`, `net.bytes`, `net.dropped`).
    metrics: Option<MetricsRegistry>,
}

impl NetState {
    fn note_dropped(&mut self, from: HostId, to: HostId) {
        self.stats.dropped += 1;
        self.links.entry((from, to)).or_default().dropped += 1;
        if let Some(m) = &self.metrics {
            m.counter_inc("net.dropped");
        }
    }
}

/// Cloneable handle to the shared cluster network.
#[derive(Clone)]
pub struct Network {
    state: Arc<Mutex<NetState>>,
}

/// Outcome of a send attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendOutcome {
    /// Message scheduled for delivery after the returned delay.
    Sent(SimDuration),
    /// Source or destination host is down.
    HostDown,
    /// Nothing is bound at the destination address.
    NoBinding,
    /// Message lost to injected packet loss.
    Lost,
}

impl SendOutcome {
    /// True if the message was scheduled.
    pub fn is_sent(&self) -> bool {
        matches!(self, SendOutcome::Sent(_))
    }
}

impl Network {
    /// Create an empty network with the given latency model. The jitter
    /// and loss RNG is seeded independently of the engine RNG so that the
    /// two sample streams do not perturb each other.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        Network {
            state: Arc::new(Mutex::new(NetState {
                hosts: Vec::new(),
                bindings: HashMap::new(),
                next_ephemeral: HashMap::new(),
                latency,
                rng: SmallRng::seed_from_u64(seed),
                drop_prob: 0.0,
                stats: NetStats::default(),
                links: HashMap::new(),
                metrics: None,
            })),
        }
    }

    /// Mirror traffic counters into `m` (`net.messages`, `net.bytes`,
    /// `net.dropped`) from now on.
    pub fn attach_metrics(&self, m: MetricsRegistry) {
        self.state.lock().metrics = Some(m);
    }

    /// Register a host; returns its id.
    pub fn add_host(&self, name: impl Into<String>, kind: HostKind) -> HostId {
        let mut s = self.state.lock();
        let id = HostId(s.hosts.len());
        s.hosts.push(Host { name: name.into().into(), kind, down: false });
        id
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.state.lock().hosts.len()
    }

    /// Metadata of a host (cheap: the name is interned). Prefer the
    /// field-specific accessors below when only one attribute is needed.
    pub fn host(&self, id: HostId) -> Host {
        self.state.lock().hosts[id.0].clone()
    }

    /// Interned name of a host — a refcount bump, no `String` clone.
    pub fn host_name(&self, id: HostId) -> Arc<str> {
        self.state.lock().hosts[id.0].name.clone()
    }

    /// Role of a host, without cloning the entry.
    pub fn host_kind(&self, id: HostId) -> HostKind {
        self.state.lock().hosts[id.0].kind
    }

    /// Liveness of a host, without cloning the entry.
    pub fn host_is_down(&self, id: HostId) -> bool {
        self.state.lock().hosts[id.0].down
    }

    /// All hosts of a given kind.
    pub fn hosts_of_kind(&self, kind: HostKind) -> Vec<HostId> {
        let s = self.state.lock();
        (0..s.hosts.len()).filter(|&i| s.hosts[i].kind == kind).map(HostId).collect()
    }

    /// Fail or recover a host. Messages from/to a down host are dropped.
    pub fn set_host_down(&self, id: HostId, down: bool) {
        self.state.lock().hosts[id.0].down = down;
    }

    /// Probability in `[0, 1]` that any message is silently lost.
    pub fn set_drop_probability(&self, p: f64) {
        self.state.lock().drop_prob = p.clamp(0.0, 1.0);
    }

    /// Bind an endpoint at a fixed address (e.g. a daemon's well-known
    /// port). Re-binding an address replaces the previous binding.
    pub fn bind(&self, addr: Address, ep: Endpoint) {
        self.state.lock().bindings.insert(addr, ep);
    }

    /// Bind at an ephemeral port on `host`; returns the full address.
    pub fn bind_auto(&self, host: HostId, ep: Endpoint) -> Address {
        let mut s = self.state.lock();
        let next = s.next_ephemeral.entry(host).or_insert(ports::EPHEMERAL_BASE);
        let port = Port(*next);
        *next += 1;
        let addr = Address::new(host, port);
        s.bindings.insert(addr, ep);
        addr
    }

    /// Remove a binding.
    pub fn unbind(&self, addr: Address) {
        self.state.lock().bindings.remove(&addr);
    }

    /// Resolve an address to its bound endpoint.
    pub fn resolve(&self, addr: Address) -> Option<Endpoint> {
        self.state.lock().bindings.get(&addr).copied()
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> NetStats {
        self.state.lock().stats
    }

    /// Traffic counters for one directed link.
    pub fn link_stats(&self, from: HostId, to: HostId) -> NetStats {
        self.state.lock().links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// All directed links with traffic, sorted by `(from, to)`.
    pub fn links(&self) -> Vec<((HostId, HostId), NetStats)> {
        let s = self.state.lock();
        let mut v: Vec<_> = s.links.iter().map(|(&k, &st)| (k, st)).collect();
        v.sort_by_key(|&((f, t), _)| (f.0, t.0));
        v
    }

    /// The latency model in effect (read-only copy; layers above use it
    /// to reason about overlap, e.g. pipelined transfers).
    pub fn latency_model(&self) -> LatencyModel {
        self.state.lock().latency.clone()
    }

    /// Compute the delay for a message and update counters, or decide to
    /// drop it. Returns the resolved endpoint on success.
    fn route(
        &self,
        from: HostId,
        to: Address,
        bytes: u64,
    ) -> Result<(Endpoint, SimDuration), SendOutcome> {
        let mut s = self.state.lock();
        if s.hosts.get(from.0).is_none_or(|h| h.down)
            || s.hosts.get(to.host.0).is_none_or(|h| h.down)
        {
            s.note_dropped(from, to.host);
            return Err(SendOutcome::HostDown);
        }
        let Some(ep) = s.bindings.get(&to).copied() else {
            s.note_dropped(from, to.host);
            return Err(SendOutcome::NoBinding);
        };
        if s.drop_prob > 0.0 {
            let roll: f64 = rand::Rng::gen(&mut s.rng);
            if roll < s.drop_prob {
                s.note_dropped(from, to.host);
                return Err(SendOutcome::Lost);
            }
        }
        let local = from == to.host;
        // Split-borrow the state so the latency model is consulted in
        // place — no per-message clone of the model.
        let NetState { latency, rng, stats, links, metrics, .. } = &mut *s;
        let delay = latency.delay(local, bytes, rng);
        stats.messages += 1;
        stats.bytes += bytes;
        let link = links.entry((from, to.host)).or_default();
        link.messages += 1;
        link.bytes += bytes;
        if let Some(m) = metrics {
            m.counter_inc("net.messages");
            m.counter_add("net.bytes", bytes);
        }
        Ok((ep, delay))
    }

    /// Send `payload` from a process residing on `from` to the service at
    /// `to`, modelling a wire size of `bytes`.
    pub fn send_from_proc<T: Any + Send>(
        &self,
        p: &Proc,
        from: HostId,
        to: Address,
        payload: T,
        bytes: u64,
    ) -> SendOutcome {
        match self.route(from, to, bytes) {
            Ok((ep, delay)) => {
                p.send(ep, payload, delay);
                SendOutcome::Sent(delay)
            }
            Err(o) => o,
        }
    }

    /// Send `payload` from an actor residing on `from` to the service at
    /// `to`, modelling a wire size of `bytes`.
    pub fn send_from_ctx<T: Any + Send>(
        &self,
        ctx: &mut Ctx<'_>,
        from: HostId,
        to: Address,
        payload: T,
        bytes: u64,
    ) -> SendOutcome {
        match self.route(from, to, bytes) {
            Ok((ep, delay)) => {
                ctx.send(ep, payload, delay);
                SendOutcome::Sent(delay)
            }
            Err(o) => o,
        }
    }

    /// Send a pre-built envelope (keeps an existing `src`).
    pub fn send_env_from_proc(
        &self,
        p: &Proc,
        from: HostId,
        to: Address,
        env: Envelope,
        bytes: u64,
    ) -> SendOutcome {
        match self.route(from, to, bytes) {
            Ok((ep, delay)) => {
                p.send_env(ep, env, delay);
                SendOutcome::Sent(delay)
            }
            Err(o) => o,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darms_sim::{Engine, SimTime};

    fn net() -> Network {
        Network::new(LatencyModel::ideal(), 7)
    }

    #[test]
    fn host_registry_and_kinds() {
        let n = net();
        let h = n.add_host("head", HostKind::Head);
        let c = n.add_host("cn01", HostKind::Compute);
        let a = n.add_host("ac01", HostKind::Accelerator);
        assert_eq!(n.host_count(), 3);
        assert_eq!(&*n.host(h).name, "head");
        assert_eq!(&*n.host_name(h), "head");
        assert_eq!(n.host_kind(c), HostKind::Compute);
        assert!(!n.host_is_down(a));
        assert_eq!(n.hosts_of_kind(HostKind::Compute), vec![c]);
        assert_eq!(n.hosts_of_kind(HostKind::Accelerator), vec![a]);
    }

    #[test]
    fn ephemeral_ports_are_unique_per_host() {
        let n = net();
        let h = n.add_host("h", HostKind::Generic);
        let mut sim = Engine::with_seed(1);
        let pid = sim.spawn_process("x", |_| async {});
        let a1 = n.bind_auto(h, pid.into());
        let a2 = n.bind_auto(h, pid.into());
        assert_ne!(a1, a2);
        assert_eq!(n.resolve(a1), Some(Endpoint::Process(pid)));
        n.unbind(a1);
        assert_eq!(n.resolve(a1), None);
        assert_eq!(n.resolve(a2), Some(Endpoint::Process(pid)));
    }

    #[test]
    fn message_crosses_network_with_latency() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        let mut sim = Engine::with_seed(1);
        let out = Arc::new(Mutex::new(None));
        let o = out.clone();
        let rx = sim.spawn_process("rx", move |p| async move {
            let (v, _) = p.recv_as::<u64>().await;
            *o.lock() = Some((v, p.now()));
        });
        let addr = Address::new(h2, Port(9));
        n.bind(addr, rx.into());
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            let outcome = n2.send_from_proc(&p, h1, addr, 123u64, 1_000_000);
            assert!(outcome.is_sent());
        });
        sim.run();
        let (v, at) = out.lock().unwrap();
        assert_eq!(v, 123);
        // ideal model: 50us base + 1ms serialisation
        assert_eq!(at, SimTime::ZERO + SimDuration::from_micros(1050));
        assert_eq!(n.stats().messages, 1);
        assert_eq!(n.stats().bytes, 1_000_000);
    }

    #[test]
    fn down_host_drops_messages() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        let mut sim = Engine::with_seed(1);
        let rx = sim.spawn_process("rx", |p| async move {
            assert!(p.recv_timeout(SimDuration::from_secs(1)).await.is_none());
        });
        let addr = Address::new(h2, Port(1));
        n.bind(addr, rx.into());
        n.set_host_down(h2, true);
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            assert_eq!(n2.send_from_proc(&p, h1, addr, 1u8, 8), SendOutcome::HostDown);
        });
        sim.run();
        assert_eq!(n.stats().dropped, 1);
        assert_eq!(n.stats().messages, 0);
    }

    #[test]
    fn unbound_address_reports_no_binding() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let mut sim = Engine::with_seed(1);
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            let out = n2.send_from_proc(&p, h1, Address::new(h1, Port(404)), 1u8, 8);
            assert_eq!(out, SendOutcome::NoBinding);
        });
        sim.run();
    }

    #[test]
    fn injected_loss_drops_roughly_that_fraction() {
        let n = net();
        let h1 = n.add_host("h1", HostKind::Compute);
        let h2 = n.add_host("h2", HostKind::Compute);
        n.set_drop_probability(0.5);
        let mut sim = Engine::with_seed(1);
        let rx = sim.spawn_process("rx", |p| async move {
            loop {
                let _ = p.recv().await;
            }
        });
        let addr = Address::new(h2, Port(1));
        n.bind(addr, rx.into());
        let n2 = n.clone();
        sim.spawn_process("tx", move |p| async move {
            for _ in 0..400 {
                let _ = n2.send_from_proc(&p, h1, addr, 0u8, 8);
            }
        });
        sim.run();
        let s = n.stats();
        assert_eq!(s.messages + s.dropped, 400);
        assert!(s.dropped > 120 && s.dropped < 280, "dropped={}", s.dropped);
    }

    #[test]
    fn host_down_recovery() {
        let n = net();
        let h = n.add_host("h", HostKind::Compute);
        n.set_host_down(h, true);
        assert!(n.host(h).down);
        n.set_host_down(h, false);
        assert!(!n.host(h).down);
    }
}
