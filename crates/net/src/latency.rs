//! Message-delay model for the simulated interconnect.

use darms_sim::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;

/// Parameters of the interconnect delay model. The delay of a message of
/// `n` bytes between two distinct hosts is
///
/// ```text
/// base_remote + n / bandwidth ± jitter
/// ```
///
/// and `base_local` for messages that stay on one host (loopback). Jitter
/// is uniform in `[-jitter_frac, +jitter_frac]` relative to the
/// deterministic part, drawn from the model's seeded RNG.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// One-way latency between two distinct hosts.
    pub base_remote: SimDuration,
    /// One-way latency for host-local (loopback) messages.
    pub base_local: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Relative jitter amplitude (0.0 disables jitter).
    pub jitter_frac: f64,
}

impl LatencyModel {
    /// Gigabit-Ethernet-class interconnect of the paper's 2013 testbed:
    /// ~60 µs one-way message latency, ~1 GiB/s effective bandwidth,
    /// 5 % jitter.
    pub fn paper_testbed() -> Self {
        LatencyModel {
            base_remote: SimDuration::from_micros(60),
            base_local: SimDuration::from_micros(5),
            bandwidth_bps: 1.0 * 1024.0 * 1024.0 * 1024.0,
            jitter_frac: 0.05,
        }
    }

    /// An idealised zero-jitter model, handy for exact-value unit tests.
    pub fn ideal() -> Self {
        LatencyModel {
            base_remote: SimDuration::from_micros(50),
            base_local: SimDuration::from_micros(5),
            bandwidth_bps: 1e9,
            jitter_frac: 0.0,
        }
    }

    /// Deterministic part of the delay (no jitter applied).
    pub fn base_delay(&self, local: bool, bytes: u64) -> SimDuration {
        let base = if local { self.base_local } else { self.base_remote };
        let ser = SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps.max(1.0));
        base + ser
    }

    /// Full delay including jitter drawn from `rng`.
    pub fn delay(&self, local: bool, bytes: u64, rng: &mut SmallRng) -> SimDuration {
        let det = self.base_delay(local, bytes);
        if self.jitter_frac <= 0.0 {
            return det;
        }
        let f = 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        det.mul_f64(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn base_delay_adds_serialisation() {
        let m = LatencyModel::ideal();
        let d0 = m.base_delay(false, 0);
        let d1 = m.base_delay(false, 1_000_000); // 1 MB at 1 GB/s = 1 ms
        assert_eq!(d0, SimDuration::from_micros(50));
        assert_eq!(d1 - d0, SimDuration::from_millis(1));
    }

    #[test]
    fn local_is_cheaper_than_remote() {
        let m = LatencyModel::paper_testbed();
        assert!(m.base_delay(true, 0) < m.base_delay(false, 0));
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = LatencyModel::ideal();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(m.delay(false, 100, &mut rng), m.base_delay(false, 100));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = LatencyModel::paper_testbed();
        let mut rng = SmallRng::seed_from_u64(9);
        let det = m.base_delay(false, 4096).as_secs_f64();
        for _ in 0..200 {
            let d = m.delay(false, 4096, &mut rng).as_secs_f64();
            assert!(d >= det * (1.0 - m.jitter_frac) - 1e-12);
            assert!(d <= det * (1.0 + m.jitter_frac) + 1e-12);
        }
    }
}
