//! Property tests of the network model.

use darms_net::{Address, HostKind, LatencyModel, Network, Port};
use darms_sim::{Engine, SimDuration};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Delay is monotone in message size and bounded by the jitter band.
    #[test]
    fn delay_monotone_and_bounded(a in 0u64..10_000_000, b in 0u64..10_000_000, seed in 0u64..1000) {
        let m = LatencyModel::paper_testbed();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.base_delay(false, small) <= m.base_delay(false, large));
        let mut rng = SmallRng::seed_from_u64(seed);
        let det = m.base_delay(false, large).as_secs_f64();
        let d = m.delay(false, large, &mut rng).as_secs_f64();
        prop_assert!(d >= det * (1.0 - m.jitter_frac) - 1e-12);
        prop_assert!(d <= det * (1.0 + m.jitter_frac) + 1e-12);
    }

    /// With loss probability 0 nothing drops; with 1 everything drops.
    #[test]
    fn loss_extremes(n in 1usize..50) {
        for &(p, expect_all) in &[(0.0, true), (1.0, false)] {
            let net = Network::new(LatencyModel::ideal(), 5);
            let h1 = net.add_host("a", HostKind::Generic);
            let h2 = net.add_host("b", HostKind::Generic);
            net.set_drop_probability(p);
            let mut sim = Engine::with_seed(1);
            let rx = sim.spawn_process("rx", |p| async move {
                loop {
                    let _ = p.recv().await;
                }
            });
            let addr = Address::new(h2, Port(1));
            net.bind(addr, rx.into());
            let n2 = net.clone();
            sim.spawn_process("tx", move |proc| async move {
                for _ in 0..n {
                    let _ = n2.send_from_proc(&proc, h1, addr, 0u8, 8);
                }
            });
            sim.run();
            let s = net.stats();
            if expect_all {
                prop_assert_eq!(s.messages as usize, n);
                prop_assert_eq!(s.dropped, 0);
            } else {
                prop_assert_eq!(s.messages, 0);
                prop_assert_eq!(s.dropped as usize, n);
            }
        }
    }

    /// Ephemeral binds never collide, across any number of hosts/binds.
    #[test]
    fn ephemeral_ports_unique(hosts in 1usize..5, binds in 1usize..30) {
        let net = Network::new(LatencyModel::ideal(), 5);
        let hs: Vec<_> = (0..hosts).map(|i| net.add_host(format!("h{i}"), HostKind::Generic)).collect();
        let mut sim = Engine::with_seed(1);
        let pid = sim.spawn_process("x", |_| async {});
        let mut seen = std::collections::HashSet::new();
        for i in 0..binds {
            let h = hs[i % hs.len()];
            let addr = net.bind_auto(h, pid.into());
            prop_assert!(seen.insert(addr), "duplicate address {addr}");
        }
    }
}

#[test]
fn zero_byte_message_has_base_latency_only() {
    let m = LatencyModel::ideal();
    assert_eq!(m.base_delay(false, 0), SimDuration::from_micros(50));
    assert_eq!(m.base_delay(true, 0), SimDuration::from_micros(5));
}
