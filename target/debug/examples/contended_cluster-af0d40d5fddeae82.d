/root/repo/target/debug/examples/contended_cluster-af0d40d5fddeae82.d: examples/contended_cluster.rs

/root/repo/target/debug/examples/contended_cluster-af0d40d5fddeae82: examples/contended_cluster.rs

examples/contended_cluster.rs:
