/root/repo/target/debug/examples/quickstart-a0052371b6bdc37b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a0052371b6bdc37b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
