/root/repo/target/debug/examples/matmul_offload-7f9ed1674a6d16a7.d: examples/matmul_offload.rs Cargo.toml

/root/repo/target/debug/examples/libmatmul_offload-7f9ed1674a6d16a7.rmeta: examples/matmul_offload.rs Cargo.toml

examples/matmul_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
