/root/repo/target/debug/examples/dynamic_scaling-6f3bd27f3fe9ac83.d: examples/dynamic_scaling.rs

/root/repo/target/debug/examples/dynamic_scaling-6f3bd27f3fe9ac83: examples/dynamic_scaling.rs

examples/dynamic_scaling.rs:
