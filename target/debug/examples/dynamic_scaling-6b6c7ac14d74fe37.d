/root/repo/target/debug/examples/dynamic_scaling-6b6c7ac14d74fe37.d: examples/dynamic_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_scaling-6b6c7ac14d74fe37.rmeta: examples/dynamic_scaling.rs Cargo.toml

examples/dynamic_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
