/root/repo/target/debug/examples/heat_stencil-5c7a2e68abf5a740.d: examples/heat_stencil.rs

/root/repo/target/debug/examples/heat_stencil-5c7a2e68abf5a740: examples/heat_stencil.rs

examples/heat_stencil.rs:
