/root/repo/target/debug/examples/malleable_mpi-ff24bd50f8661233.d: examples/malleable_mpi.rs

/root/repo/target/debug/examples/malleable_mpi-ff24bd50f8661233: examples/malleable_mpi.rs

examples/malleable_mpi.rs:
