/root/repo/target/debug/examples/heat_stencil-5603717a25f9b970.d: examples/heat_stencil.rs Cargo.toml

/root/repo/target/debug/examples/libheat_stencil-5603717a25f9b970.rmeta: examples/heat_stencil.rs Cargo.toml

examples/heat_stencil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
