/root/repo/target/debug/examples/matmul_offload-5a8834da6ddc7237.d: examples/matmul_offload.rs

/root/repo/target/debug/examples/matmul_offload-5a8834da6ddc7237: examples/matmul_offload.rs

examples/matmul_offload.rs:
