/root/repo/target/debug/examples/malleable_mpi-8086b500a28b489a.d: examples/malleable_mpi.rs Cargo.toml

/root/repo/target/debug/examples/libmalleable_mpi-8086b500a28b489a.rmeta: examples/malleable_mpi.rs Cargo.toml

examples/malleable_mpi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
