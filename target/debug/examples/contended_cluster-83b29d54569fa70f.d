/root/repo/target/debug/examples/contended_cluster-83b29d54569fa70f.d: examples/contended_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libcontended_cluster-83b29d54569fa70f.rmeta: examples/contended_cluster.rs Cargo.toml

examples/contended_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
