/root/repo/target/debug/examples/quickstart-56d59c5e4a156bd8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-56d59c5e4a156bd8: examples/quickstart.rs

examples/quickstart.rs:
