/root/repo/target/debug/deps/ext_collective-58f87c842fcdfaef.d: crates/experiments/src/bin/ext_collective.rs Cargo.toml

/root/repo/target/debug/deps/libext_collective-58f87c842fcdfaef.rmeta: crates/experiments/src/bin/ext_collective.rs Cargo.toml

crates/experiments/src/bin/ext_collective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
