/root/repo/target/debug/deps/workflow_static-10e12ba55a06fe55.d: tests/workflow_static.rs

/root/repo/target/debug/deps/workflow_static-10e12ba55a06fe55: tests/workflow_static.rs

tests/workflow_static.rs:
