/root/repo/target/debug/deps/properties-dcfc02d7c7edd2e2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-dcfc02d7c7edd2e2: tests/properties.rs

tests/properties.rs:
