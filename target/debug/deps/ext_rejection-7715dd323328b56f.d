/root/repo/target/debug/deps/ext_rejection-7715dd323328b56f.d: crates/experiments/src/bin/ext_rejection.rs Cargo.toml

/root/repo/target/debug/deps/libext_rejection-7715dd323328b56f.rmeta: crates/experiments/src/bin/ext_rejection.rs Cargo.toml

crates/experiments/src/bin/ext_rejection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
