/root/repo/target/debug/deps/workflow_static-d145f2f78c01b9c2.d: tests/workflow_static.rs Cargo.toml

/root/repo/target/debug/deps/libworkflow_static-d145f2f78c01b9c2.rmeta: tests/workflow_static.rs Cargo.toml

tests/workflow_static.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
