/root/repo/target/debug/deps/ext_collective-3707e2c893b92485.d: crates/experiments/src/bin/ext_collective.rs

/root/repo/target/debug/deps/ext_collective-3707e2c893b92485: crates/experiments/src/bin/ext_collective.rs

crates/experiments/src/bin/ext_collective.rs:
