/root/repo/target/debug/deps/fig8-2b7c60f640448f68.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-2b7c60f640448f68: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
