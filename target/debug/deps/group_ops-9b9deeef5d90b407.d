/root/repo/target/debug/deps/group_ops-9b9deeef5d90b407.d: tests/group_ops.rs Cargo.toml

/root/repo/target/debug/deps/libgroup_ops-9b9deeef5d90b407.rmeta: tests/group_ops.rs Cargo.toml

tests/group_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
