/root/repo/target/debug/deps/determinism-aba65d8c95e9450c.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-aba65d8c95e9450c: tests/determinism.rs

tests/determinism.rs:
