/root/repo/target/debug/deps/darms_net-8034230a7b59b6b9.d: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

/root/repo/target/debug/deps/libdarms_net-8034230a7b59b6b9.rlib: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

/root/repo/target/debug/deps/libdarms_net-8034230a7b59b6b9.rmeta: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

crates/net/src/lib.rs:
crates/net/src/host.rs:
crates/net/src/latency.rs:
crates/net/src/network.rs:
