/root/repo/target/debug/deps/darms-80f71d68af6728e5.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs Cargo.toml

/root/repo/target/debug/deps/libdarms-80f71d68af6728e5.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
