/root/repo/target/debug/deps/workflow_dynamic-ff48f6ea3c7ddfa7.d: tests/workflow_dynamic.rs

/root/repo/target/debug/deps/workflow_dynamic-ff48f6ea3c7ddfa7: tests/workflow_dynamic.rs

tests/workflow_dynamic.rs:
