/root/repo/target/debug/deps/ext_collective-a055ae05f46dd31f.d: crates/experiments/src/bin/ext_collective.rs

/root/repo/target/debug/deps/ext_collective-a055ae05f46dd31f: crates/experiments/src/bin/ext_collective.rs

crates/experiments/src/bin/ext_collective.rs:
