/root/repo/target/debug/deps/darms_sched-d114af6c78a9d07b.d: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_sched-d114af6c78a9d07b.rmeta: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/alloc.rs:
crates/sched/src/backfill.rs:
crates/sched/src/fairshare.rs:
crates/sched/src/priority.rs:
crates/sched/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
