/root/repo/target/debug/deps/darms_sim-c9b178077b5f4fb3.d: crates/sim/src/lib.rs crates/sim/src/actor.rs crates/sim/src/engine.rs crates/sim/src/envelope.rs crates/sim/src/export.rs crates/sim/src/kernel.rs crates/sim/src/metrics.rs crates/sim/src/process.rs crates/sim/src/recorder.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_sim-c9b178077b5f4fb3.rmeta: crates/sim/src/lib.rs crates/sim/src/actor.rs crates/sim/src/engine.rs crates/sim/src/envelope.rs crates/sim/src/export.rs crates/sim/src/kernel.rs crates/sim/src/metrics.rs crates/sim/src/process.rs crates/sim/src/recorder.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/actor.rs:
crates/sim/src/engine.rs:
crates/sim/src/envelope.rs:
crates/sim/src/export.rs:
crates/sim/src/kernel.rs:
crates/sim/src/metrics.rs:
crates/sim/src/process.rs:
crates/sim/src/recorder.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
