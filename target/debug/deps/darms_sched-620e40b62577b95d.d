/root/repo/target/debug/deps/darms_sched-620e40b62577b95d.d: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/darms_sched-620e40b62577b95d: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/alloc.rs:
crates/sched/src/backfill.rs:
crates/sched/src/fairshare.rs:
crates/sched/src/priority.rs:
crates/sched/src/scheduler.rs:
