/root/repo/target/debug/deps/darms_net-74c102da4368f7b5.d: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_net-74c102da4368f7b5.rmeta: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/host.rs:
crates/net/src/latency.rs:
crates/net/src/network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
