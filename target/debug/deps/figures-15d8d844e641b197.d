/root/repo/target/debug/deps/figures-15d8d844e641b197.d: crates/experiments/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-15d8d844e641b197.rmeta: crates/experiments/benches/figures.rs Cargo.toml

crates/experiments/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
