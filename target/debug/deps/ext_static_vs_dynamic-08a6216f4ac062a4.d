/root/repo/target/debug/deps/ext_static_vs_dynamic-08a6216f4ac062a4.d: crates/experiments/src/bin/ext_static_vs_dynamic.rs Cargo.toml

/root/repo/target/debug/deps/libext_static_vs_dynamic-08a6216f4ac062a4.rmeta: crates/experiments/src/bin/ext_static_vs_dynamic.rs Cargo.toml

crates/experiments/src/bin/ext_static_vs_dynamic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
