/root/repo/target/debug/deps/workflow_trace-141ab8d9b69e0aa2.d: tests/workflow_trace.rs Cargo.toml

/root/repo/target/debug/deps/libworkflow_trace-141ab8d9b69e0aa2.rmeta: tests/workflow_trace.rs Cargo.toml

tests/workflow_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
