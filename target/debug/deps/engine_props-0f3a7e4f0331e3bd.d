/root/repo/target/debug/deps/engine_props-0f3a7e4f0331e3bd.d: crates/sim/tests/engine_props.rs Cargo.toml

/root/repo/target/debug/deps/libengine_props-0f3a7e4f0331e3bd.rmeta: crates/sim/tests/engine_props.rs Cargo.toml

crates/sim/tests/engine_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
