/root/repo/target/debug/deps/fig9-bf06f28b9b5c5d26.d: crates/experiments/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-bf06f28b9b5c5d26.rmeta: crates/experiments/src/bin/fig9.rs Cargo.toml

crates/experiments/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
