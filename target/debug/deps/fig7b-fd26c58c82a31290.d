/root/repo/target/debug/deps/fig7b-fd26c58c82a31290.d: crates/experiments/src/bin/fig7b.rs Cargo.toml

/root/repo/target/debug/deps/libfig7b-fd26c58c82a31290.rmeta: crates/experiments/src/bin/fig7b.rs Cargo.toml

crates/experiments/src/bin/fig7b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
