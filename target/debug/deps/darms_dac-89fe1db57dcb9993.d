/root/repo/target/debug/deps/darms_dac-89fe1db57dcb9993.d: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

/root/repo/target/debug/deps/darms_dac-89fe1db57dcb9993: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

crates/dac/src/lib.rs:
crates/dac/src/collective.rs:
crates/dac/src/cost.rs:
crates/dac/src/device.rs:
crates/dac/src/frontend.rs:
crates/dac/src/kernel.rs:
crates/dac/src/runtime.rs:
crates/dac/src/starter.rs:
