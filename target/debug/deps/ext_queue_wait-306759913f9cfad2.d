/root/repo/target/debug/deps/ext_queue_wait-306759913f9cfad2.d: crates/experiments/src/bin/ext_queue_wait.rs

/root/repo/target/debug/deps/ext_queue_wait-306759913f9cfad2: crates/experiments/src/bin/ext_queue_wait.rs

crates/experiments/src/bin/ext_queue_wait.rs:
