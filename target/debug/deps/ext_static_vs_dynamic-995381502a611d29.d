/root/repo/target/debug/deps/ext_static_vs_dynamic-995381502a611d29.d: crates/experiments/src/bin/ext_static_vs_dynamic.rs

/root/repo/target/debug/deps/ext_static_vs_dynamic-995381502a611d29: crates/experiments/src/bin/ext_static_vs_dynamic.rs

crates/experiments/src/bin/ext_static_vs_dynamic.rs:
