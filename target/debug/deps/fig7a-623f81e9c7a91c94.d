/root/repo/target/debug/deps/fig7a-623f81e9c7a91c94.d: crates/experiments/src/bin/fig7a.rs

/root/repo/target/debug/deps/fig7a-623f81e9c7a91c94: crates/experiments/src/bin/fig7a.rs

crates/experiments/src/bin/fig7a.rs:
