/root/repo/target/debug/deps/ext_pipelining-408d8d8216e6ec56.d: crates/experiments/src/bin/ext_pipelining.rs

/root/repo/target/debug/deps/ext_pipelining-408d8d8216e6ec56: crates/experiments/src/bin/ext_pipelining.rs

crates/experiments/src/bin/ext_pipelining.rs:
