/root/repo/target/debug/deps/darms_dac-98e6286784ca944e.d: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_dac-98e6286784ca944e.rmeta: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs Cargo.toml

crates/dac/src/lib.rs:
crates/dac/src/collective.rs:
crates/dac/src/cost.rs:
crates/dac/src/device.rs:
crates/dac/src/frontend.rs:
crates/dac/src/kernel.rs:
crates/dac/src/runtime.rs:
crates/dac/src/starter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
