/root/repo/target/debug/deps/darms_repro-f80869e1fa36f0b1.d: src/lib.rs

/root/repo/target/debug/deps/darms_repro-f80869e1fa36f0b1: src/lib.rs

src/lib.rs:
