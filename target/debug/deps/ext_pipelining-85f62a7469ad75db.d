/root/repo/target/debug/deps/ext_pipelining-85f62a7469ad75db.d: crates/experiments/src/bin/ext_pipelining.rs

/root/repo/target/debug/deps/ext_pipelining-85f62a7469ad75db: crates/experiments/src/bin/ext_pipelining.rs

crates/experiments/src/bin/ext_pipelining.rs:
