/root/repo/target/debug/deps/ext_pipelining-2c7686d6dd51c452.d: crates/experiments/src/bin/ext_pipelining.rs Cargo.toml

/root/repo/target/debug/deps/libext_pipelining-2c7686d6dd51c452.rmeta: crates/experiments/src/bin/ext_pipelining.rs Cargo.toml

crates/experiments/src/bin/ext_pipelining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
