/root/repo/target/debug/deps/darms_experiments-18c8b44554f68293.d: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/libdarms_experiments-18c8b44554f68293.rlib: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/libdarms_experiments-18c8b44554f68293.rmeta: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/extended.rs:
crates/experiments/src/figures.rs:
