/root/repo/target/debug/deps/darms-61a910c2cd08f677.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

/root/repo/target/debug/deps/libdarms-61a910c2cd08f677.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

/root/repo/target/debug/deps/libdarms-61a910c2cd08f677.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
