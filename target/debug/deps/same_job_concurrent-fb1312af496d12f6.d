/root/repo/target/debug/deps/same_job_concurrent-fb1312af496d12f6.d: tests/same_job_concurrent.rs Cargo.toml

/root/repo/target/debug/deps/libsame_job_concurrent-fb1312af496d12f6.rmeta: tests/same_job_concurrent.rs Cargo.toml

tests/same_job_concurrent.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
