/root/repo/target/debug/deps/malleable-ec703e8f32c3dd27.d: tests/malleable.rs Cargo.toml

/root/repo/target/debug/deps/libmalleable-ec703e8f32c3dd27.rmeta: tests/malleable.rs Cargo.toml

tests/malleable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
