/root/repo/target/debug/deps/ext_queue_wait-e90792b421e34551.d: crates/experiments/src/bin/ext_queue_wait.rs Cargo.toml

/root/repo/target/debug/deps/libext_queue_wait-e90792b421e34551.rmeta: crates/experiments/src/bin/ext_queue_wait.rs Cargo.toml

crates/experiments/src/bin/ext_queue_wait.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
