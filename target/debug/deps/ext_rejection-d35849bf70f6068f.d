/root/repo/target/debug/deps/ext_rejection-d35849bf70f6068f.d: crates/experiments/src/bin/ext_rejection.rs

/root/repo/target/debug/deps/ext_rejection-d35849bf70f6068f: crates/experiments/src/bin/ext_rejection.rs

crates/experiments/src/bin/ext_rejection.rs:
