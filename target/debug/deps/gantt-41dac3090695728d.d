/root/repo/target/debug/deps/gantt-41dac3090695728d.d: crates/experiments/src/bin/gantt.rs Cargo.toml

/root/repo/target/debug/deps/libgantt-41dac3090695728d.rmeta: crates/experiments/src/bin/gantt.rs Cargo.toml

crates/experiments/src/bin/gantt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
