/root/repo/target/debug/deps/fig8-2ce9b1886b17ac4d.d: crates/experiments/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-2ce9b1886b17ac4d.rmeta: crates/experiments/src/bin/fig8.rs Cargo.toml

crates/experiments/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
