/root/repo/target/debug/deps/fig7a-2ebf7a0994f148e8.d: crates/experiments/src/bin/fig7a.rs

/root/repo/target/debug/deps/fig7a-2ebf7a0994f148e8: crates/experiments/src/bin/fig7a.rs

crates/experiments/src/bin/fig7a.rs:
