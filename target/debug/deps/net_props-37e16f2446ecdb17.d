/root/repo/target/debug/deps/net_props-37e16f2446ecdb17.d: crates/net/tests/net_props.rs

/root/repo/target/debug/deps/net_props-37e16f2446ecdb17: crates/net/tests/net_props.rs

crates/net/tests/net_props.rs:
