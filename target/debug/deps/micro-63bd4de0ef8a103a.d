/root/repo/target/debug/deps/micro-63bd4de0ef8a103a.d: crates/experiments/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-63bd4de0ef8a103a.rmeta: crates/experiments/benches/micro.rs Cargo.toml

crates/experiments/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
