/root/repo/target/debug/deps/ext_rejection-9f0a246d0efa5315.d: crates/experiments/src/bin/ext_rejection.rs

/root/repo/target/debug/deps/ext_rejection-9f0a246d0efa5315: crates/experiments/src/bin/ext_rejection.rs

crates/experiments/src/bin/ext_rejection.rs:
