/root/repo/target/debug/deps/double_buffering-023b05fedfa713e5.d: tests/double_buffering.rs

/root/repo/target/debug/deps/double_buffering-023b05fedfa713e5: tests/double_buffering.rs

tests/double_buffering.rs:
