/root/repo/target/debug/deps/darms_workload-d79895b3133f8796.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/darms_workload-d79895b3133f8796: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/metrics.rs:
crates/workload/src/swf.rs:
crates/workload/src/table.rs:
crates/workload/src/trace.rs:
