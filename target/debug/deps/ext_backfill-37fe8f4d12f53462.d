/root/repo/target/debug/deps/ext_backfill-37fe8f4d12f53462.d: crates/experiments/src/bin/ext_backfill.rs

/root/repo/target/debug/deps/ext_backfill-37fe8f4d12f53462: crates/experiments/src/bin/ext_backfill.rs

crates/experiments/src/bin/ext_backfill.rs:
