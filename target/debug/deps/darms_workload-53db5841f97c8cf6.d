/root/repo/target/debug/deps/darms_workload-53db5841f97c8cf6.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_workload-53db5841f97c8cf6.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/metrics.rs:
crates/workload/src/swf.rs:
crates/workload/src/table.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
