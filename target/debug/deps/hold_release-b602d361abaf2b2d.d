/root/repo/target/debug/deps/hold_release-b602d361abaf2b2d.d: tests/hold_release.rs Cargo.toml

/root/repo/target/debug/deps/libhold_release-b602d361abaf2b2d.rmeta: tests/hold_release.rs Cargo.toml

tests/hold_release.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
