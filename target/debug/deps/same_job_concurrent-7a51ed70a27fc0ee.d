/root/repo/target/debug/deps/same_job_concurrent-7a51ed70a27fc0ee.d: tests/same_job_concurrent.rs

/root/repo/target/debug/deps/same_job_concurrent-7a51ed70a27fc0ee: tests/same_job_concurrent.rs

tests/same_job_concurrent.rs:
