/root/repo/target/debug/deps/ext_partial-acf5a555ea2e0f0c.d: crates/experiments/src/bin/ext_partial.rs

/root/repo/target/debug/deps/ext_partial-acf5a555ea2e0f0c: crates/experiments/src/bin/ext_partial.rs

crates/experiments/src/bin/ext_partial.rs:
