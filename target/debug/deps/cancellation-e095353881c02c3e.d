/root/repo/target/debug/deps/cancellation-e095353881c02c3e.d: tests/cancellation.rs

/root/repo/target/debug/deps/cancellation-e095353881c02c3e: tests/cancellation.rs

tests/cancellation.rs:
