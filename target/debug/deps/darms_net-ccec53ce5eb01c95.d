/root/repo/target/debug/deps/darms_net-ccec53ce5eb01c95.d: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

/root/repo/target/debug/deps/darms_net-ccec53ce5eb01c95: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

crates/net/src/lib.rs:
crates/net/src/host.rs:
crates/net/src/latency.rs:
crates/net/src/network.rs:
