/root/repo/target/debug/deps/ext_fairness-7e6774d3f0a2a3d5.d: crates/experiments/src/bin/ext_fairness.rs

/root/repo/target/debug/deps/ext_fairness-7e6774d3f0a2a3d5: crates/experiments/src/bin/ext_fairness.rs

crates/experiments/src/bin/ext_fairness.rs:
