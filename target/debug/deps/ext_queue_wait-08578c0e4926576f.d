/root/repo/target/debug/deps/ext_queue_wait-08578c0e4926576f.d: crates/experiments/src/bin/ext_queue_wait.rs

/root/repo/target/debug/deps/ext_queue_wait-08578c0e4926576f: crates/experiments/src/bin/ext_queue_wait.rs

crates/experiments/src/bin/ext_queue_wait.rs:
