/root/repo/target/debug/deps/double_buffering-cba37618b4991604.d: tests/double_buffering.rs Cargo.toml

/root/repo/target/debug/deps/libdouble_buffering-cba37618b4991604.rmeta: tests/double_buffering.rs Cargo.toml

tests/double_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
