/root/repo/target/debug/deps/engine_stepping-9a31b75f33417177.d: crates/sim/tests/engine_stepping.rs Cargo.toml

/root/repo/target/debug/deps/libengine_stepping-9a31b75f33417177.rmeta: crates/sim/tests/engine_stepping.rs Cargo.toml

crates/sim/tests/engine_stepping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
