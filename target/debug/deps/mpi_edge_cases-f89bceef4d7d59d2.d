/root/repo/target/debug/deps/mpi_edge_cases-f89bceef4d7d59d2.d: crates/mpi/tests/mpi_edge_cases.rs

/root/repo/target/debug/deps/mpi_edge_cases-f89bceef4d7d59d2: crates/mpi/tests/mpi_edge_cases.rs

crates/mpi/tests/mpi_edge_cases.rs:
