/root/repo/target/debug/deps/fig8-0aca2ede437acb6d.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0aca2ede437acb6d: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
