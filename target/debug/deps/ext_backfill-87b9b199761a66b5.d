/root/repo/target/debug/deps/ext_backfill-87b9b199761a66b5.d: crates/experiments/src/bin/ext_backfill.rs Cargo.toml

/root/repo/target/debug/deps/libext_backfill-87b9b199761a66b5.rmeta: crates/experiments/src/bin/ext_backfill.rs Cargo.toml

crates/experiments/src/bin/ext_backfill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
