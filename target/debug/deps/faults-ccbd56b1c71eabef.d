/root/repo/target/debug/deps/faults-ccbd56b1c71eabef.d: tests/faults.rs

/root/repo/target/debug/deps/faults-ccbd56b1c71eabef: tests/faults.rs

tests/faults.rs:
