/root/repo/target/debug/deps/walltime-7d214cea0395e74b.d: tests/walltime.rs

/root/repo/target/debug/deps/walltime-7d214cea0395e74b: tests/walltime.rs

tests/walltime.rs:
