/root/repo/target/debug/deps/swf_replay-01ce853c86715fff.d: crates/experiments/src/bin/swf_replay.rs

/root/repo/target/debug/deps/swf_replay-01ce853c86715fff: crates/experiments/src/bin/swf_replay.rs

crates/experiments/src/bin/swf_replay.rs:
