/root/repo/target/debug/deps/fig7a-7ccfd2241ed04a19.d: crates/experiments/src/bin/fig7a.rs Cargo.toml

/root/repo/target/debug/deps/libfig7a-7ccfd2241ed04a19.rmeta: crates/experiments/src/bin/fig7a.rs Cargo.toml

crates/experiments/src/bin/fig7a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
