/root/repo/target/debug/deps/fig9-428819c05d0c0bdf.d: crates/experiments/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-428819c05d0c0bdf.rmeta: crates/experiments/src/bin/fig9.rs Cargo.toml

crates/experiments/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
