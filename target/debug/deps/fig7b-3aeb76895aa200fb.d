/root/repo/target/debug/deps/fig7b-3aeb76895aa200fb.d: crates/experiments/src/bin/fig7b.rs Cargo.toml

/root/repo/target/debug/deps/libfig7b-3aeb76895aa200fb.rmeta: crates/experiments/src/bin/fig7b.rs Cargo.toml

crates/experiments/src/bin/fig7b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
