/root/repo/target/debug/deps/darms_sim-5b3b6ec3a3e05557.d: crates/sim/src/lib.rs crates/sim/src/actor.rs crates/sim/src/engine.rs crates/sim/src/envelope.rs crates/sim/src/export.rs crates/sim/src/kernel.rs crates/sim/src/metrics.rs crates/sim/src/process.rs crates/sim/src/recorder.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/darms_sim-5b3b6ec3a3e05557: crates/sim/src/lib.rs crates/sim/src/actor.rs crates/sim/src/engine.rs crates/sim/src/envelope.rs crates/sim/src/export.rs crates/sim/src/kernel.rs crates/sim/src/metrics.rs crates/sim/src/process.rs crates/sim/src/recorder.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/actor.rs:
crates/sim/src/engine.rs:
crates/sim/src/envelope.rs:
crates/sim/src/export.rs:
crates/sim/src/kernel.rs:
crates/sim/src/metrics.rs:
crates/sim/src/process.rs:
crates/sim/src/recorder.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
