/root/repo/target/debug/deps/net_props-eca42c7a367549ff.d: crates/net/tests/net_props.rs Cargo.toml

/root/repo/target/debug/deps/libnet_props-eca42c7a367549ff.rmeta: crates/net/tests/net_props.rs Cargo.toml

crates/net/tests/net_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
