/root/repo/target/debug/deps/ext_static_vs_dynamic-5bce6bc889866d54.d: crates/experiments/src/bin/ext_static_vs_dynamic.rs

/root/repo/target/debug/deps/ext_static_vs_dynamic-5bce6bc889866d54: crates/experiments/src/bin/ext_static_vs_dynamic.rs

crates/experiments/src/bin/ext_static_vs_dynamic.rs:
