/root/repo/target/debug/deps/gantt-1151d3e0f3570c8c.d: crates/experiments/src/bin/gantt.rs

/root/repo/target/debug/deps/gantt-1151d3e0f3570c8c: crates/experiments/src/bin/gantt.rs

crates/experiments/src/bin/gantt.rs:
