/root/repo/target/debug/deps/darms-d9aa02fbc0fc6ce3.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

/root/repo/target/debug/deps/darms-d9aa02fbc0fc6ce3: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
