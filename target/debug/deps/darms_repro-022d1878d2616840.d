/root/repo/target/debug/deps/darms_repro-022d1878d2616840.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_repro-022d1878d2616840.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
