/root/repo/target/debug/deps/darms_mpi-f8e4a8cfc5d4eec5.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

/root/repo/target/debug/deps/libdarms_mpi-f8e4a8cfc5d4eec5.rlib: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

/root/repo/target/debug/deps/libdarms_mpi-f8e4a8cfc5d4eec5.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/cost.rs:
crates/mpi/src/dpm.rs:
crates/mpi/src/proc.rs:
crates/mpi/src/runtime.rs:
crates/mpi/src/types.rs:
