/root/repo/target/debug/deps/ext_fairness-cf27b546a82d753e.d: crates/experiments/src/bin/ext_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libext_fairness-cf27b546a82d753e.rmeta: crates/experiments/src/bin/ext_fairness.rs Cargo.toml

crates/experiments/src/bin/ext_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
