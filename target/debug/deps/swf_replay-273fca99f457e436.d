/root/repo/target/debug/deps/swf_replay-273fca99f457e436.d: crates/experiments/src/bin/swf_replay.rs

/root/repo/target/debug/deps/swf_replay-273fca99f457e436: crates/experiments/src/bin/swf_replay.rs

crates/experiments/src/bin/swf_replay.rs:
