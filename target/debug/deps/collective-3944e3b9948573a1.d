/root/repo/target/debug/deps/collective-3944e3b9948573a1.d: tests/collective.rs

/root/repo/target/debug/deps/collective-3944e3b9948573a1: tests/collective.rs

tests/collective.rs:
