/root/repo/target/debug/deps/mpi_edge_cases-8def8843a5207bb1.d: crates/mpi/tests/mpi_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libmpi_edge_cases-8def8843a5207bb1.rmeta: crates/mpi/tests/mpi_edge_cases.rs Cargo.toml

crates/mpi/tests/mpi_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
