/root/repo/target/debug/deps/darms_workload-8714778e1b48b4a9.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libdarms_workload-8714778e1b48b4a9.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

/root/repo/target/debug/deps/libdarms_workload-8714778e1b48b4a9.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/metrics.rs:
crates/workload/src/swf.rs:
crates/workload/src/table.rs:
crates/workload/src/trace.rs:
