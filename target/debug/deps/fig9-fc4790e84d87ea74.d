/root/repo/target/debug/deps/fig9-fc4790e84d87ea74.d: crates/experiments/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-fc4790e84d87ea74: crates/experiments/src/bin/fig9.rs

crates/experiments/src/bin/fig9.rs:
