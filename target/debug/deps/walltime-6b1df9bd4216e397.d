/root/repo/target/debug/deps/walltime-6b1df9bd4216e397.d: tests/walltime.rs Cargo.toml

/root/repo/target/debug/deps/libwalltime-6b1df9bd4216e397.rmeta: tests/walltime.rs Cargo.toml

tests/walltime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
