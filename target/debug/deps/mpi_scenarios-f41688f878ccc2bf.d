/root/repo/target/debug/deps/mpi_scenarios-f41688f878ccc2bf.d: crates/mpi/tests/mpi_scenarios.rs

/root/repo/target/debug/deps/mpi_scenarios-f41688f878ccc2bf: crates/mpi/tests/mpi_scenarios.rs

crates/mpi/tests/mpi_scenarios.rs:
