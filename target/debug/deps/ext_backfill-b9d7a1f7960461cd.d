/root/repo/target/debug/deps/ext_backfill-b9d7a1f7960461cd.d: crates/experiments/src/bin/ext_backfill.rs Cargo.toml

/root/repo/target/debug/deps/libext_backfill-b9d7a1f7960461cd.rmeta: crates/experiments/src/bin/ext_backfill.rs Cargo.toml

crates/experiments/src/bin/ext_backfill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
