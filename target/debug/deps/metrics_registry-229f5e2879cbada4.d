/root/repo/target/debug/deps/metrics_registry-229f5e2879cbada4.d: tests/metrics_registry.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_registry-229f5e2879cbada4.rmeta: tests/metrics_registry.rs Cargo.toml

tests/metrics_registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
