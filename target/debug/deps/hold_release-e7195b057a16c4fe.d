/root/repo/target/debug/deps/hold_release-e7195b057a16c4fe.d: tests/hold_release.rs

/root/repo/target/debug/deps/hold_release-e7195b057a16c4fe: tests/hold_release.rs

tests/hold_release.rs:
