/root/repo/target/debug/deps/darms_experiments-45ec8777da9937e2.d: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_experiments-45ec8777da9937e2.rmeta: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/extended.rs:
crates/experiments/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
