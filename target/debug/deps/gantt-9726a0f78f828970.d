/root/repo/target/debug/deps/gantt-9726a0f78f828970.d: crates/experiments/src/bin/gantt.rs Cargo.toml

/root/repo/target/debug/deps/libgantt-9726a0f78f828970.rmeta: crates/experiments/src/bin/gantt.rs Cargo.toml

crates/experiments/src/bin/gantt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
