/root/repo/target/debug/deps/ext_static_vs_dynamic-8191245c9bfca04d.d: crates/experiments/src/bin/ext_static_vs_dynamic.rs Cargo.toml

/root/repo/target/debug/deps/libext_static_vs_dynamic-8191245c9bfca04d.rmeta: crates/experiments/src/bin/ext_static_vs_dynamic.rs Cargo.toml

crates/experiments/src/bin/ext_static_vs_dynamic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
