/root/repo/target/debug/deps/darms_workload-81285c574c3ced04.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_workload-81285c574c3ced04.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/metrics.rs:
crates/workload/src/swf.rs:
crates/workload/src/table.rs:
crates/workload/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
