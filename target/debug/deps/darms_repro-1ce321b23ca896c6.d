/root/repo/target/debug/deps/darms_repro-1ce321b23ca896c6.d: src/lib.rs

/root/repo/target/debug/deps/libdarms_repro-1ce321b23ca896c6.rlib: src/lib.rs

/root/repo/target/debug/deps/libdarms_repro-1ce321b23ca896c6.rmeta: src/lib.rs

src/lib.rs:
