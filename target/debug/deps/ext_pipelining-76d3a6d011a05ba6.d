/root/repo/target/debug/deps/ext_pipelining-76d3a6d011a05ba6.d: crates/experiments/src/bin/ext_pipelining.rs Cargo.toml

/root/repo/target/debug/deps/libext_pipelining-76d3a6d011a05ba6.rmeta: crates/experiments/src/bin/ext_pipelining.rs Cargo.toml

crates/experiments/src/bin/ext_pipelining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
