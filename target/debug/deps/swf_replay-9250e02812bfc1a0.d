/root/repo/target/debug/deps/swf_replay-9250e02812bfc1a0.d: crates/experiments/src/bin/swf_replay.rs Cargo.toml

/root/repo/target/debug/deps/libswf_replay-9250e02812bfc1a0.rmeta: crates/experiments/src/bin/swf_replay.rs Cargo.toml

crates/experiments/src/bin/swf_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
