/root/repo/target/debug/deps/fig9-07c4f352454b810f.d: crates/experiments/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-07c4f352454b810f: crates/experiments/src/bin/fig9.rs

crates/experiments/src/bin/fig9.rs:
