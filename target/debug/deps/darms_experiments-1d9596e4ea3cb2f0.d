/root/repo/target/debug/deps/darms_experiments-1d9596e4ea3cb2f0.d: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_experiments-1d9596e4ea3cb2f0.rmeta: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/extended.rs:
crates/experiments/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
