/root/repo/target/debug/deps/ext_rejection-78c89ea9e0396c5c.d: crates/experiments/src/bin/ext_rejection.rs Cargo.toml

/root/repo/target/debug/deps/libext_rejection-78c89ea9e0396c5c.rmeta: crates/experiments/src/bin/ext_rejection.rs Cargo.toml

crates/experiments/src/bin/ext_rejection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
