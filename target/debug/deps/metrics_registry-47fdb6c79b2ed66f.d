/root/repo/target/debug/deps/metrics_registry-47fdb6c79b2ed66f.d: tests/metrics_registry.rs

/root/repo/target/debug/deps/metrics_registry-47fdb6c79b2ed66f: tests/metrics_registry.rs

tests/metrics_registry.rs:
