/root/repo/target/debug/deps/collective-64d4f30a4693c4c0.d: tests/collective.rs Cargo.toml

/root/repo/target/debug/deps/libcollective-64d4f30a4693c4c0.rmeta: tests/collective.rs Cargo.toml

tests/collective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
