/root/repo/target/debug/deps/fig7b-dd6b18e549b7371b.d: crates/experiments/src/bin/fig7b.rs

/root/repo/target/debug/deps/fig7b-dd6b18e549b7371b: crates/experiments/src/bin/fig7b.rs

crates/experiments/src/bin/fig7b.rs:
