/root/repo/target/debug/deps/faults-3aba2efcc0094a7e.d: tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-3aba2efcc0094a7e.rmeta: tests/faults.rs Cargo.toml

tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
