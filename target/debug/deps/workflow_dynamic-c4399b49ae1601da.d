/root/repo/target/debug/deps/workflow_dynamic-c4399b49ae1601da.d: tests/workflow_dynamic.rs Cargo.toml

/root/repo/target/debug/deps/libworkflow_dynamic-c4399b49ae1601da.rmeta: tests/workflow_dynamic.rs Cargo.toml

tests/workflow_dynamic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
