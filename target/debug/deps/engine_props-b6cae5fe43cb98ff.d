/root/repo/target/debug/deps/engine_props-b6cae5fe43cb98ff.d: crates/sim/tests/engine_props.rs

/root/repo/target/debug/deps/engine_props-b6cae5fe43cb98ff: crates/sim/tests/engine_props.rs

crates/sim/tests/engine_props.rs:
