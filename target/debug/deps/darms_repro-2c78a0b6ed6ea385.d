/root/repo/target/debug/deps/darms_repro-2c78a0b6ed6ea385.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_repro-2c78a0b6ed6ea385.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
