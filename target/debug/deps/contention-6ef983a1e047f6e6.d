/root/repo/target/debug/deps/contention-6ef983a1e047f6e6.d: tests/contention.rs Cargo.toml

/root/repo/target/debug/deps/libcontention-6ef983a1e047f6e6.rmeta: tests/contention.rs Cargo.toml

tests/contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
