/root/repo/target/debug/deps/contention-67e2ad58573309ec.d: tests/contention.rs

/root/repo/target/debug/deps/contention-67e2ad58573309ec: tests/contention.rs

tests/contention.rs:
