/root/repo/target/debug/deps/ext_fairness-612b523c68936f3c.d: crates/experiments/src/bin/ext_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libext_fairness-612b523c68936f3c.rmeta: crates/experiments/src/bin/ext_fairness.rs Cargo.toml

crates/experiments/src/bin/ext_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
