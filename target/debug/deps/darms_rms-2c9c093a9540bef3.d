/root/repo/target/debug/deps/darms_rms-2c9c093a9540bef3.d: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs

/root/repo/target/debug/deps/libdarms_rms-2c9c093a9540bef3.rlib: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs

/root/repo/target/debug/deps/libdarms_rms-2c9c093a9540bef3.rmeta: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs

crates/rms/src/lib.rs:
crates/rms/src/cost.rs:
crates/rms/src/fs.rs:
crates/rms/src/ifl.rs:
crates/rms/src/job.rs:
crates/rms/src/mom.rs:
crates/rms/src/monitor.rs:
crates/rms/src/nodes.rs:
crates/rms/src/proto.rs:
crates/rms/src/server.rs:
