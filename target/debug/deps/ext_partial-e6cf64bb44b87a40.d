/root/repo/target/debug/deps/ext_partial-e6cf64bb44b87a40.d: crates/experiments/src/bin/ext_partial.rs

/root/repo/target/debug/deps/ext_partial-e6cf64bb44b87a40: crates/experiments/src/bin/ext_partial.rs

crates/experiments/src/bin/ext_partial.rs:
