/root/repo/target/debug/deps/mpi_scenarios-b58c7d48143e0681.d: crates/mpi/tests/mpi_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libmpi_scenarios-b58c7d48143e0681.rmeta: crates/mpi/tests/mpi_scenarios.rs Cargo.toml

crates/mpi/tests/mpi_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
