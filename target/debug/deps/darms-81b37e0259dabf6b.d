/root/repo/target/debug/deps/darms-81b37e0259dabf6b.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs Cargo.toml

/root/repo/target/debug/deps/libdarms-81b37e0259dabf6b.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
