/root/repo/target/debug/deps/malleable-8842a1dd7d0639c7.d: tests/malleable.rs

/root/repo/target/debug/deps/malleable-8842a1dd7d0639c7: tests/malleable.rs

tests/malleable.rs:
