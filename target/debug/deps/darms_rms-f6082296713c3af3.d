/root/repo/target/debug/deps/darms_rms-f6082296713c3af3.d: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_rms-f6082296713c3af3.rmeta: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs Cargo.toml

crates/rms/src/lib.rs:
crates/rms/src/cost.rs:
crates/rms/src/fs.rs:
crates/rms/src/ifl.rs:
crates/rms/src/job.rs:
crates/rms/src/mom.rs:
crates/rms/src/monitor.rs:
crates/rms/src/nodes.rs:
crates/rms/src/proto.rs:
crates/rms/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
