/root/repo/target/debug/deps/ext_backfill-182c424fcf9f0b33.d: crates/experiments/src/bin/ext_backfill.rs

/root/repo/target/debug/deps/ext_backfill-182c424fcf9f0b33: crates/experiments/src/bin/ext_backfill.rs

crates/experiments/src/bin/ext_backfill.rs:
