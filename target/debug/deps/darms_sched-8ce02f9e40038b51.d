/root/repo/target/debug/deps/darms_sched-8ce02f9e40038b51.d: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libdarms_sched-8ce02f9e40038b51.rlib: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

/root/repo/target/debug/deps/libdarms_sched-8ce02f9e40038b51.rmeta: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/alloc.rs:
crates/sched/src/backfill.rs:
crates/sched/src/fairshare.rs:
crates/sched/src/priority.rs:
crates/sched/src/scheduler.rs:
