/root/repo/target/debug/deps/darms_dac-6131fb9559373149.d: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

/root/repo/target/debug/deps/libdarms_dac-6131fb9559373149.rlib: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

/root/repo/target/debug/deps/libdarms_dac-6131fb9559373149.rmeta: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

crates/dac/src/lib.rs:
crates/dac/src/collective.rs:
crates/dac/src/cost.rs:
crates/dac/src/device.rs:
crates/dac/src/frontend.rs:
crates/dac/src/kernel.rs:
crates/dac/src/runtime.rs:
crates/dac/src/starter.rs:
