/root/repo/target/debug/deps/darms_mpi-31427337e04083c6.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

/root/repo/target/debug/deps/darms_mpi-31427337e04083c6: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/cost.rs:
crates/mpi/src/dpm.rs:
crates/mpi/src/proc.rs:
crates/mpi/src/runtime.rs:
crates/mpi/src/types.rs:
