/root/repo/target/debug/deps/gantt-42ea2d86992de2eb.d: crates/experiments/src/bin/gantt.rs

/root/repo/target/debug/deps/gantt-42ea2d86992de2eb: crates/experiments/src/bin/gantt.rs

crates/experiments/src/bin/gantt.rs:
