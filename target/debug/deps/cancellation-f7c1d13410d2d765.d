/root/repo/target/debug/deps/cancellation-f7c1d13410d2d765.d: tests/cancellation.rs Cargo.toml

/root/repo/target/debug/deps/libcancellation-f7c1d13410d2d765.rmeta: tests/cancellation.rs Cargo.toml

tests/cancellation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
