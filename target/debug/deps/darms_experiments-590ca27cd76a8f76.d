/root/repo/target/debug/deps/darms_experiments-590ca27cd76a8f76.d: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

/root/repo/target/debug/deps/darms_experiments-590ca27cd76a8f76: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/extended.rs:
crates/experiments/src/figures.rs:
