/root/repo/target/debug/deps/engine_stepping-34fbb43c9f185709.d: crates/sim/tests/engine_stepping.rs

/root/repo/target/debug/deps/engine_stepping-34fbb43c9f185709: crates/sim/tests/engine_stepping.rs

crates/sim/tests/engine_stepping.rs:
