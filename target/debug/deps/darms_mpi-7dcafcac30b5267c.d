/root/repo/target/debug/deps/darms_mpi-7dcafcac30b5267c.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libdarms_mpi-7dcafcac30b5267c.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs Cargo.toml

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/cost.rs:
crates/mpi/src/dpm.rs:
crates/mpi/src/proc.rs:
crates/mpi/src/runtime.rs:
crates/mpi/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
