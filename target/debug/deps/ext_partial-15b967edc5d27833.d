/root/repo/target/debug/deps/ext_partial-15b967edc5d27833.d: crates/experiments/src/bin/ext_partial.rs Cargo.toml

/root/repo/target/debug/deps/libext_partial-15b967edc5d27833.rmeta: crates/experiments/src/bin/ext_partial.rs Cargo.toml

crates/experiments/src/bin/ext_partial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
