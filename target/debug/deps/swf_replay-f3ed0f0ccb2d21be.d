/root/repo/target/debug/deps/swf_replay-f3ed0f0ccb2d21be.d: crates/experiments/src/bin/swf_replay.rs Cargo.toml

/root/repo/target/debug/deps/libswf_replay-f3ed0f0ccb2d21be.rmeta: crates/experiments/src/bin/swf_replay.rs Cargo.toml

crates/experiments/src/bin/swf_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
