/root/repo/target/debug/deps/workflow_trace-8580780ed4f6041d.d: tests/workflow_trace.rs

/root/repo/target/debug/deps/workflow_trace-8580780ed4f6041d: tests/workflow_trace.rs

tests/workflow_trace.rs:
