/root/repo/target/debug/deps/group_ops-2e961e3cf65b9f4b.d: tests/group_ops.rs

/root/repo/target/debug/deps/group_ops-2e961e3cf65b9f4b: tests/group_ops.rs

tests/group_ops.rs:
