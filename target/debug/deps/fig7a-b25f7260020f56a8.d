/root/repo/target/debug/deps/fig7a-b25f7260020f56a8.d: crates/experiments/src/bin/fig7a.rs Cargo.toml

/root/repo/target/debug/deps/libfig7a-b25f7260020f56a8.rmeta: crates/experiments/src/bin/fig7a.rs Cargo.toml

crates/experiments/src/bin/fig7a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
