/root/repo/target/debug/deps/fig7b-98a0191fe6bbd87a.d: crates/experiments/src/bin/fig7b.rs

/root/repo/target/debug/deps/fig7b-98a0191fe6bbd87a: crates/experiments/src/bin/fig7b.rs

crates/experiments/src/bin/fig7b.rs:
