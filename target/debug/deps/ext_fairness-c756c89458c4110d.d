/root/repo/target/debug/deps/ext_fairness-c756c89458c4110d.d: crates/experiments/src/bin/ext_fairness.rs

/root/repo/target/debug/deps/ext_fairness-c756c89458c4110d: crates/experiments/src/bin/ext_fairness.rs

crates/experiments/src/bin/ext_fairness.rs:
