/root/repo/target/release/deps/darms_experiments-5e3e86b0001b9765.d: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

/root/repo/target/release/deps/libdarms_experiments-5e3e86b0001b9765.rlib: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

/root/repo/target/release/deps/libdarms_experiments-5e3e86b0001b9765.rmeta: crates/experiments/src/lib.rs crates/experiments/src/extended.rs crates/experiments/src/figures.rs

crates/experiments/src/lib.rs:
crates/experiments/src/extended.rs:
crates/experiments/src/figures.rs:
