/root/repo/target/release/deps/darms_sched-bb97a37ccac8785b.d: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libdarms_sched-bb97a37ccac8785b.rlib: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

/root/repo/target/release/deps/libdarms_sched-bb97a37ccac8785b.rmeta: crates/sched/src/lib.rs crates/sched/src/alloc.rs crates/sched/src/backfill.rs crates/sched/src/fairshare.rs crates/sched/src/priority.rs crates/sched/src/scheduler.rs

crates/sched/src/lib.rs:
crates/sched/src/alloc.rs:
crates/sched/src/backfill.rs:
crates/sched/src/fairshare.rs:
crates/sched/src/priority.rs:
crates/sched/src/scheduler.rs:
