/root/repo/target/release/deps/ext_partial-fa53d9c651a726df.d: crates/experiments/src/bin/ext_partial.rs

/root/repo/target/release/deps/ext_partial-fa53d9c651a726df: crates/experiments/src/bin/ext_partial.rs

crates/experiments/src/bin/ext_partial.rs:
