/root/repo/target/release/deps/darms_net-55247f5ae1563f63.d: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

/root/repo/target/release/deps/libdarms_net-55247f5ae1563f63.rlib: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

/root/repo/target/release/deps/libdarms_net-55247f5ae1563f63.rmeta: crates/net/src/lib.rs crates/net/src/host.rs crates/net/src/latency.rs crates/net/src/network.rs

crates/net/src/lib.rs:
crates/net/src/host.rs:
crates/net/src/latency.rs:
crates/net/src/network.rs:
