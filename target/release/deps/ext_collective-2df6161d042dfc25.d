/root/repo/target/release/deps/ext_collective-2df6161d042dfc25.d: crates/experiments/src/bin/ext_collective.rs

/root/repo/target/release/deps/ext_collective-2df6161d042dfc25: crates/experiments/src/bin/ext_collective.rs

crates/experiments/src/bin/ext_collective.rs:
