/root/repo/target/release/deps/ext_backfill-6d02999f0b5dffe8.d: crates/experiments/src/bin/ext_backfill.rs

/root/repo/target/release/deps/ext_backfill-6d02999f0b5dffe8: crates/experiments/src/bin/ext_backfill.rs

crates/experiments/src/bin/ext_backfill.rs:
