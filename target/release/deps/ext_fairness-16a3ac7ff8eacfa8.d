/root/repo/target/release/deps/ext_fairness-16a3ac7ff8eacfa8.d: crates/experiments/src/bin/ext_fairness.rs

/root/repo/target/release/deps/ext_fairness-16a3ac7ff8eacfa8: crates/experiments/src/bin/ext_fairness.rs

crates/experiments/src/bin/ext_fairness.rs:
