/root/repo/target/release/deps/ext_pipelining-68f918ce0d2f0d5d.d: crates/experiments/src/bin/ext_pipelining.rs

/root/repo/target/release/deps/ext_pipelining-68f918ce0d2f0d5d: crates/experiments/src/bin/ext_pipelining.rs

crates/experiments/src/bin/ext_pipelining.rs:
