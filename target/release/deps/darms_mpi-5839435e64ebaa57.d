/root/repo/target/release/deps/darms_mpi-5839435e64ebaa57.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

/root/repo/target/release/deps/libdarms_mpi-5839435e64ebaa57.rlib: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

/root/repo/target/release/deps/libdarms_mpi-5839435e64ebaa57.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/cost.rs crates/mpi/src/dpm.rs crates/mpi/src/proc.rs crates/mpi/src/runtime.rs crates/mpi/src/types.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/cost.rs:
crates/mpi/src/dpm.rs:
crates/mpi/src/proc.rs:
crates/mpi/src/runtime.rs:
crates/mpi/src/types.rs:
