/root/repo/target/release/deps/fig8-3233468f91a23c1c.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-3233468f91a23c1c: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
