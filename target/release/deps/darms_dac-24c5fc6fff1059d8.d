/root/repo/target/release/deps/darms_dac-24c5fc6fff1059d8.d: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

/root/repo/target/release/deps/libdarms_dac-24c5fc6fff1059d8.rlib: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

/root/repo/target/release/deps/libdarms_dac-24c5fc6fff1059d8.rmeta: crates/dac/src/lib.rs crates/dac/src/collective.rs crates/dac/src/cost.rs crates/dac/src/device.rs crates/dac/src/frontend.rs crates/dac/src/kernel.rs crates/dac/src/runtime.rs crates/dac/src/starter.rs

crates/dac/src/lib.rs:
crates/dac/src/collective.rs:
crates/dac/src/cost.rs:
crates/dac/src/device.rs:
crates/dac/src/frontend.rs:
crates/dac/src/kernel.rs:
crates/dac/src/runtime.rs:
crates/dac/src/starter.rs:
