/root/repo/target/release/deps/gantt-49b12d57ca9cd145.d: crates/experiments/src/bin/gantt.rs

/root/repo/target/release/deps/gantt-49b12d57ca9cd145: crates/experiments/src/bin/gantt.rs

crates/experiments/src/bin/gantt.rs:
