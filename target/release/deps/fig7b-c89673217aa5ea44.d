/root/repo/target/release/deps/fig7b-c89673217aa5ea44.d: crates/experiments/src/bin/fig7b.rs

/root/repo/target/release/deps/fig7b-c89673217aa5ea44: crates/experiments/src/bin/fig7b.rs

crates/experiments/src/bin/fig7b.rs:
