/root/repo/target/release/deps/darms_sim-8ed1a42357db41ef.d: crates/sim/src/lib.rs crates/sim/src/actor.rs crates/sim/src/engine.rs crates/sim/src/envelope.rs crates/sim/src/export.rs crates/sim/src/kernel.rs crates/sim/src/metrics.rs crates/sim/src/process.rs crates/sim/src/recorder.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdarms_sim-8ed1a42357db41ef.rlib: crates/sim/src/lib.rs crates/sim/src/actor.rs crates/sim/src/engine.rs crates/sim/src/envelope.rs crates/sim/src/export.rs crates/sim/src/kernel.rs crates/sim/src/metrics.rs crates/sim/src/process.rs crates/sim/src/recorder.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdarms_sim-8ed1a42357db41ef.rmeta: crates/sim/src/lib.rs crates/sim/src/actor.rs crates/sim/src/engine.rs crates/sim/src/envelope.rs crates/sim/src/export.rs crates/sim/src/kernel.rs crates/sim/src/metrics.rs crates/sim/src/process.rs crates/sim/src/recorder.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/actor.rs:
crates/sim/src/engine.rs:
crates/sim/src/envelope.rs:
crates/sim/src/export.rs:
crates/sim/src/kernel.rs:
crates/sim/src/metrics.rs:
crates/sim/src/process.rs:
crates/sim/src/recorder.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
