/root/repo/target/release/deps/ext_static_vs_dynamic-9abaab7c4e066aa9.d: crates/experiments/src/bin/ext_static_vs_dynamic.rs

/root/repo/target/release/deps/ext_static_vs_dynamic-9abaab7c4e066aa9: crates/experiments/src/bin/ext_static_vs_dynamic.rs

crates/experiments/src/bin/ext_static_vs_dynamic.rs:
