/root/repo/target/release/deps/fig9-7397e0bc860cd047.d: crates/experiments/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-7397e0bc860cd047: crates/experiments/src/bin/fig9.rs

crates/experiments/src/bin/fig9.rs:
