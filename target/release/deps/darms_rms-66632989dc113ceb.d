/root/repo/target/release/deps/darms_rms-66632989dc113ceb.d: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs

/root/repo/target/release/deps/libdarms_rms-66632989dc113ceb.rlib: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs

/root/repo/target/release/deps/libdarms_rms-66632989dc113ceb.rmeta: crates/rms/src/lib.rs crates/rms/src/cost.rs crates/rms/src/fs.rs crates/rms/src/ifl.rs crates/rms/src/job.rs crates/rms/src/mom.rs crates/rms/src/monitor.rs crates/rms/src/nodes.rs crates/rms/src/proto.rs crates/rms/src/server.rs

crates/rms/src/lib.rs:
crates/rms/src/cost.rs:
crates/rms/src/fs.rs:
crates/rms/src/ifl.rs:
crates/rms/src/job.rs:
crates/rms/src/mom.rs:
crates/rms/src/monitor.rs:
crates/rms/src/nodes.rs:
crates/rms/src/proto.rs:
crates/rms/src/server.rs:
