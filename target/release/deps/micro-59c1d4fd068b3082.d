/root/repo/target/release/deps/micro-59c1d4fd068b3082.d: crates/experiments/benches/micro.rs

/root/repo/target/release/deps/micro-59c1d4fd068b3082: crates/experiments/benches/micro.rs

crates/experiments/benches/micro.rs:
