/root/repo/target/release/deps/fig7a-805cf6ec53210883.d: crates/experiments/src/bin/fig7a.rs

/root/repo/target/release/deps/fig7a-805cf6ec53210883: crates/experiments/src/bin/fig7a.rs

crates/experiments/src/bin/fig7a.rs:
