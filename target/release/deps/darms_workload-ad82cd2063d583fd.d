/root/repo/target/release/deps/darms_workload-ad82cd2063d583fd.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libdarms_workload-ad82cd2063d583fd.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

/root/repo/target/release/deps/libdarms_workload-ad82cd2063d583fd.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/metrics.rs crates/workload/src/swf.rs crates/workload/src/table.rs crates/workload/src/trace.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/metrics.rs:
crates/workload/src/swf.rs:
crates/workload/src/table.rs:
crates/workload/src/trace.rs:
