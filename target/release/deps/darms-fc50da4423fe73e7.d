/root/repo/target/release/deps/darms-fc50da4423fe73e7.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

/root/repo/target/release/deps/libdarms-fc50da4423fe73e7.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

/root/repo/target/release/deps/libdarms-fc50da4423fe73e7.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/config.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/config.rs:
