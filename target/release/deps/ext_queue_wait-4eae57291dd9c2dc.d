/root/repo/target/release/deps/ext_queue_wait-4eae57291dd9c2dc.d: crates/experiments/src/bin/ext_queue_wait.rs

/root/repo/target/release/deps/ext_queue_wait-4eae57291dd9c2dc: crates/experiments/src/bin/ext_queue_wait.rs

crates/experiments/src/bin/ext_queue_wait.rs:
