/root/repo/target/release/deps/swf_replay-82e6625ccebb47f6.d: crates/experiments/src/bin/swf_replay.rs

/root/repo/target/release/deps/swf_replay-82e6625ccebb47f6: crates/experiments/src/bin/swf_replay.rs

crates/experiments/src/bin/swf_replay.rs:
