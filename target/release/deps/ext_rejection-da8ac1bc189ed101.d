/root/repo/target/release/deps/ext_rejection-da8ac1bc189ed101.d: crates/experiments/src/bin/ext_rejection.rs

/root/repo/target/release/deps/ext_rejection-da8ac1bc189ed101: crates/experiments/src/bin/ext_rejection.rs

crates/experiments/src/bin/ext_rejection.rs:
