/root/repo/target/release/deps/darms_repro-a5deca064a81f731.d: src/lib.rs

/root/repo/target/release/deps/libdarms_repro-a5deca064a81f731.rlib: src/lib.rs

/root/repo/target/release/deps/libdarms_repro-a5deca064a81f731.rmeta: src/lib.rs

src/lib.rs:
