//! Blocked matrix multiplication across several network-attached
//! accelerators: C = A×B with row-blocks of A distributed over the
//! accelerator set, kernels running concurrently, results gathered and
//! verified against a host-side reference — the "offload multiple kernels
//! in parallel to a set of network-attached accelerators" scenario from
//! the paper's introduction.
//!
//! Run with: `cargo run --release --example matmul_offload`

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

const M: usize = 96; // rows of A / C
const K: usize = 64; // cols of A, rows of B
const N: usize = 80; // cols of B / C

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(5).with_split(1, 4));
    let dac = cluster.dac.clone();
    let result = Arc::new(Mutex::new(None));
    let timing = Arc::new(Mutex::new(Vec::new()));

    let out = result.clone();
    let tm = timing.clone();
    let spec = JobSpec::synthetic("matmul", SimDuration::from_secs(30)).acpn(4).script(script(
        move |jc| {
            let dac = dac.clone();
            let out = out.clone();
            let tm = tm.clone();
            async move {
                let (mut ses, handles) = AcSession::init(&jc, &dac, None).await;
                let acc_count = handles.len();

                // Host-side input matrices (deterministic pattern).
                let a: Vec<f64> = (0..M * K).map(|i| ((i % 7) as f64) - 3.0).collect();
                let b: Vec<f64> = (0..K * N).map(|i| ((i % 5) as f64) * 0.5).collect();

                // Partition A's rows over the accelerators.
                let rows_per = M.div_ceil(acc_count);
                let t0 = jc.proc.now();
                let mut parts = Vec::new();
                for (ix, &h) in handles.iter().enumerate() {
                    let lo = ix * rows_per;
                    let hi = ((ix + 1) * rows_per).min(M);
                    if lo >= hi {
                        break;
                    }
                    let m_part = hi - lo;
                    let a_part = &a[lo * K..hi * K];
                    let pa = ses.mem_alloc(h, (m_part * K * 8) as u64).await.unwrap();
                    let pb = ses.mem_alloc(h, (K * N * 8) as u64).await.unwrap();
                    let pc = ses.mem_alloc(h, (m_part * N * 8) as u64).await.unwrap();
                    ses.mem_write(h, pa, f64s_to_bytes(a_part)).await.unwrap();
                    ses.mem_write(h, pb, f64s_to_bytes(&b)).await.unwrap();
                    parts.push((h, pa, pb, pc, lo, m_part));
                }
                let t_upload = jc.proc.now();
                // Launch all block-GEMMs, then drain (kernels overlap).
                let mut pending = Vec::new();
                for &(h, pa, pb, pc, _, m_part) in &parts {
                    let l = ses
                        .kernel_launch(
                            h,
                            "matmul",
                            KernelArgs::new(
                                64,
                                256,
                                vec![
                                    Param::Ptr(pa),
                                    Param::Ptr(pb),
                                    Param::Ptr(pc),
                                    Param::U64(m_part as u64),
                                    Param::U64(K as u64),
                                    Param::U64(N as u64),
                                ],
                            ),
                        )
                        .await
                        .unwrap();
                    pending.push(l);
                }
                for l in pending {
                    ses.kernel_wait(l).await.unwrap();
                }
                let t_compute = jc.proc.now();
                // Gather C.
                let mut c = vec![0.0f64; M * N];
                for &(h, _, _, pc, lo, m_part) in &parts {
                    let block =
                        as_f64s(&ses.mem_read(h, pc, (m_part * N * 8) as u64).await.unwrap());
                    c[lo * N..(lo + m_part) * N].copy_from_slice(&block);
                }
                let t_download = jc.proc.now();
                tm.lock().extend_from_slice(&[
                    ("upload", (t_upload - t0).as_secs_f64()),
                    ("compute", (t_compute - t_upload).as_secs_f64()),
                    ("download", (t_download - t_compute).as_secs_f64()),
                ]);
                *out.lock() = Some((a, b, c, acc_count));
                ses.finalize();
            }
        },
    ));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let (a, b, c, acc_count) = result.lock().take().expect("job produced a result");
    // Host reference.
    let mut expect = vec![0.0f64; M * N];
    for i in 0..M {
        for p in 0..K {
            let aip = a[i * K + p];
            for j in 0..N {
                expect[i * N + j] += aip * b[p * N + j];
            }
        }
    }
    let max_err = c.iter().zip(&expect).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    println!(
        "== matmul_offload: {M}x{K} × {K}x{N} over {acc_count} network-attached accelerators =="
    );
    for (what, secs) in timing.lock().iter() {
        println!("  {what:>9}: {secs:.4} s (virtual)");
    }
    println!("  max |C - C_ref| = {max_err:e}");
    assert_eq!(max_err, 0.0, "offloaded result must match the host reference exactly");
    println!("  PASS: distributed result matches the host reference");
}
