//! A malleable MPI application: the generalisation the paper sketches in
//! §V — "with little extensions to our modified TORQUE resource manager,
//! any malleable application could be supported" (citing Cera et al.'s
//! dynamic-MPI work). The job starts on one compute node, dynamically
//! acquires two more through `pbs_dynget` for compute nodes, spawns MPI
//! workers there with `MPI_Comm_spawn`, reduces a result across them, and
//! releases the nodes again.
//!
//! Run with: `cargo run --example malleable_mpi`

use std::sync::Arc;

use darms::prelude::*;
use darms_mpi::{data, ANY_SOURCE, ANY_TAG};
use darms_net::HostId;
use parking_lot::Mutex;

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(31).with_split(3, 0));
    let mpi_rt = cluster.mpi.clone();
    let log = Arc::new(Mutex::new(Vec::<String>::new()));

    // The worker executable spawned on dynamically acquired nodes: sums a
    // slice of work and reports to the parent.
    mpi_rt.register_exe("worker", |mut mpi, args| async move {
        let lo: u64 = args[0].parse().unwrap();
        let hi: u64 = args[1].parse().unwrap();
        let parent = mpi.parent().expect("spawned worker");
        let merged = mpi.intercomm_merge(parent, true).await.unwrap();
        // Model some compute time, then do the real sum.
        mpi.proc().sleep(SimDuration::from_millis(200)).await;
        let me = merged.rank() as u64;
        let base = lo + (hi - lo) * (me - 1) / 2;
        let end = lo + (hi - lo) * me / 2;
        let partial: u64 = (base..end).sum();
        mpi.send(merged, 0, 1, data(partial), 8).unwrap();
        mpi.comm_disconnect(merged);
    });

    let out = log.clone();
    let rt = mpi_rt.clone();
    let spec = JobSpec::synthetic("malleable", SimDuration::from_secs(30)).ppn(8).script(script(
        move |jc| {
            let out = out.clone();
            let rt = rt.clone();
            async move {
                let say = |jc: &JobCtx, s: String| {
                    out.lock().push(format!("[t={:>6.3}s] {s}", jc.proc.now().as_secs_f64()));
                };
                say(&jc, format!("started on 1 node (host{})", jc.host.index()));

                // Grow: two more compute nodes with 8 cores each.
                let grant = jc.dynget_nodes(2, 8).await.expect("two nodes free");
                let hosts: Vec<HostId> = grant.accs.clone();
                say(&jc, format!("granted {} extra node(s) as {}", hosts.len(), grant.client_id));

                // Spawn MPI workers on the new nodes and merge.
                let mut mpi = rt.attach(jc.proc.clone(), jc.host).await;
                let self_comm = mpi.self_comm();
                let (lo, hi) = (0u64, 1000u64);
                let args = vec![lo.to_string(), hi.to_string()];
                let inter = mpi.comm_spawn(self_comm, "worker", &args, &hosts).await.unwrap();
                let merged = mpi.intercomm_merge(inter, false).await.unwrap();
                say(&jc, format!("workers joined; communicator size {}", rt.group_size(merged)));

                // Reduce the partial sums.
                let mut total = 0u64;
                for _ in 0..hosts.len() {
                    let msg = mpi.recv(merged, ANY_SOURCE, ANY_TAG).await;
                    total += msg.expect::<u64>();
                }
                let expect: u64 = (lo..hi).sum();
                assert_eq!(total, expect, "distributed sum must match");
                say(&jc, format!("distributed sum over [{lo}, {hi}) = {total} — verified"));

                // Shrink: release the nodes.
                mpi.comm_disconnect(merged);
                assert!(jc.dynfree(grant.client_id).await);
                say(&jc, "released the extra nodes".into());
            }
        },
    ));

    // A competitor that needs 2 whole nodes: it can only run after the
    // malleable job shrinks.
    let out2 = log.clone();
    let competitor = JobSpec::synthetic("competitor", SimDuration::from_secs(2))
        .nodes(2)
        .ppn(8)
        .script(script(move |jc| {
            let out2 = out2.clone();
            async move {
                if jc.node_index == 0 {
                    out2.lock().push(format!(
                        "[t={:>6.3}s] competitor started on the released nodes",
                        jc.proc.now().as_secs_f64()
                    ));
                }
                jc.proc.sleep(SimDuration::from_secs(2)).await;
            }
        }));

    cluster.qsub(spec);
    cluster.qsub_after(SimDuration::from_millis(500), competitor);
    let stats = cluster.run();

    println!("== malleable_mpi: dynamic compute-node allocation for an MPI application ==\n");
    for line in log.lock().iter() {
        println!("{line}");
    }
    println!(
        "\nsimulation: {} events, virtual time {:.3} s",
        stats.events,
        stats.end_time.as_secs_f64()
    );
    assert_eq!(stats.process_panics, 0);
}
