//! An evolving stencil application: 1-D heat diffusion, domain-decomposed
//! across network-attached accelerators with host-mediated halo exchange.
//! Mid-run the application enters a finer-resolution phase, acquires more
//! accelerators with `AC_Get`, **re-partitions the live domain** onto the
//! grown set, and finishes. The final temperature field is verified
//! against a host-side reference step for step.
//!
//! This is the paper's motivating usage scenario end-to-end: an evolving
//! job whose accelerator demand changes with its computational phase (§I).
//!
//! Run with: `cargo run --release --example heat_stencil`

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

const N: usize = 4096; // grid points
const ALPHA: f64 = 0.25;
const PHASE1_STEPS: usize = 40;
const PHASE2_STEPS: usize = 40;

/// Host-side reference Jacobi step (same arithmetic as the device kernel).
fn reference_step(u: &[f64]) -> Vec<f64> {
    let mut v = u.to_vec();
    for i in 1..u.len() - 1 {
        v[i] = u[i] + ALPHA * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
    }
    v
}

/// Partition `N` points into contiguous slices (one per accelerator).
fn partition(n_parts: usize) -> Vec<(usize, usize)> {
    let base = N / n_parts;
    (0..n_parts)
        .map(|i| {
            let lo = i * base;
            let hi = if i + 1 == n_parts { N } else { (i + 1) * base };
            (lo, hi)
        })
        .collect()
}

/// One distributed Jacobi step over the current accelerator set.
/// Each device holds its slice plus one halo cell on each side.
async fn distributed_step(
    ses: &mut AcSession,
    parts: &[(AcHandle, DevPtr, DevPtr, usize, usize)],
    field: &mut [f64],
) {
    // Upload slices with halos (async across the set).
    let mut pending = Vec::new();
    for &(h, src, _dst, lo, hi) in parts {
        let halo_lo = lo.saturating_sub(1);
        let halo_hi = (hi + 1).min(N);
        let slice = f64s_to_bytes(&field[halo_lo..halo_hi]);
        pending.push(ses.mem_write_async(h, src, slice).await.unwrap());
    }
    for l in pending {
        ses.op_wait(l).await.unwrap();
    }
    // Launch the stencil everywhere, then drain (kernels overlap).
    let mut launches = Vec::new();
    for &(h, src, dst, lo, hi) in parts {
        let halo_lo = lo.saturating_sub(1);
        let halo_hi = (hi + 1).min(N);
        let m = (halo_hi - halo_lo) as u64;
        let l = ses
            .kernel_launch(
                h,
                "stencil3",
                KernelArgs::new(
                    64,
                    256,
                    vec![Param::Ptr(src), Param::Ptr(dst), Param::U64(m), Param::F64(ALPHA)],
                ),
            )
            .await
            .unwrap();
        launches.push(l);
    }
    for l in launches {
        ses.kernel_wait(l).await.unwrap();
    }
    // Gather interiors back (the halo cells come from the neighbours'
    // interiors on the next upload — host-mediated halo exchange).
    for &(h, _src, dst, lo, hi) in parts {
        let halo_lo = lo.saturating_sub(1);
        let off = (lo - halo_lo) as u64 * 8;
        let bytes = ses.mem_read_at(h, dst, off, ((hi - lo) * 8) as u64).await.unwrap();
        field[lo..hi].copy_from_slice(&as_f64s(&bytes));
    }
}

async fn setup_parts(
    ses: &mut AcSession,
    handles: &[AcHandle],
) -> Vec<(AcHandle, DevPtr, DevPtr, usize, usize)> {
    let ranges = partition(handles.len());
    let mut parts = Vec::new();
    for (&h, (lo, hi)) in handles.iter().zip(ranges) {
        let m = (hi - lo + 2) * 8; // slice + halos
        let src = ses.mem_alloc(h, m as u64).await.unwrap();
        let dst = ses.mem_alloc(h, m as u64).await.unwrap();
        parts.push((h, src, dst, lo, hi));
    }
    parts
}

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(17).with_split(1, 6));
    let dac = cluster.dac.clone();
    let log = Arc::new(Mutex::new(Vec::<String>::new()));
    let result = Arc::new(Mutex::new(None));

    let out = log.clone();
    let res = result.clone();
    let spec =
        JobSpec::synthetic("heat", SimDuration::from_secs(120)).acpn(2).script(script(move |jc| {
            let dac = dac.clone();
            let out = out.clone();
            let res = res.clone();
            async move {
                let say = |jc: &JobCtx, s: String| {
                    out.lock().push(format!("[t={:>7.3}s] {s}", jc.proc.now().as_secs_f64()));
                };
                // Initial condition: a heat spike in the middle.
                let mut field = vec![0.0f64; N];
                field[N / 2] = 1000.0;
                let mut reference = field.clone();

                let (mut ses, statics) = AcSession::init(&jc, &dac, None).await;
                say(
                    &jc,
                    format!(
                        "phase 1: {} accelerators, {} points, {} steps",
                        statics.len(),
                        N,
                        PHASE1_STEPS
                    ),
                );
                let parts = setup_parts(&mut ses, &statics).await;
                for _ in 0..PHASE1_STEPS {
                    distributed_step(&mut ses, &parts, &mut field).await;
                    reference = reference_step(&reference);
                }
                for &(h, src, dst, ..) in &parts {
                    ses.mem_free(h, src).await.unwrap();
                    ses.mem_free(h, dst).await.unwrap();
                }

                // Phase 2: the interesting region has grown — double the
                // parallelism by acquiring two more accelerators.
                let set = ses.ac_get(2).await.expect("pool of 6 has 4 free");
                let all: Vec<AcHandle> =
                    statics.iter().chain(set.handles.iter()).copied().collect();
                say(&jc, format!("phase 2: grown to {} accelerators, re-partitioned", all.len()));
                let parts = setup_parts(&mut ses, &all).await;
                for _ in 0..PHASE2_STEPS {
                    distributed_step(&mut ses, &parts, &mut field).await;
                    reference = reference_step(&reference);
                }
                ses.ac_free(&set).await.unwrap();
                say(&jc, "released the dynamic set".into());
                ses.finalize();
                *res.lock() = Some((field, reference));
            }
        }));
    cluster.qsub(spec);
    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    println!("== heat_stencil: evolving 1-D diffusion across a growing accelerator set ==\n");
    for line in log.lock().iter() {
        println!("{line}");
    }
    let (field, reference) = result.lock().take().expect("job produced a field");
    let max_err = field.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    let total: f64 = field.iter().sum();
    println!(
        "\nafter {} steps: max |device - reference| = {max_err:e}",
        PHASE1_STEPS + PHASE2_STEPS
    );
    println!("heat conservation: Σu = {total:.6} (expected 1000)");
    assert_eq!(max_err, 0.0, "distributed stencil must match the reference exactly");
    assert!((total - 1000.0).abs() < 1e-6, "diffusion conserves heat");
    println!("PASS — re-partitioned mid-run without losing a single bit of state");
    println!(
        "\nsimulation: {} events, virtual time {:.3} s",
        stats.events,
        stats.end_time.as_secs_f64()
    );
}
