//! Quickstart: boot an 8-host simulated DAC cluster, submit a job that
//! statically requests three network-attached accelerators
//! (`qsub -l nodes=1:acpn=3`), offload a real vector addition to each of
//! them through the computation API, and print the timeline.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn main() {
    // The paper's testbed: 8 hosts; here 1 head + 1 compute node + 6
    // network-attached accelerators, with 2013-calibrated cost models.
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(42).with_split(1, 6));
    let dac = cluster.dac.clone();
    let recorder = cluster.recorder.clone();
    let log = Arc::new(Mutex::new(Vec::<String>::new()));

    let out = log.clone();
    let rec = recorder.clone();
    let spec = JobSpec::synthetic("quickstart", SimDuration::from_secs(5))
        .owner("alice")
        .acpn(3)
        .script(script(move |jc| {
            let dac = dac.clone();
            let rec = rec.clone();
            let out = out.clone();
            async move {
                let t = |jc: &JobCtx| format!("[t={:>8.3}s]", jc.proc.now().as_secs_f64());
                out.lock().push(format!(
                    "{} job {} started on host{} with {} static accelerators",
                    t(&jc),
                    jc.job,
                    jc.host.index(),
                    jc.acc_hosts.len()
                ));

                // AC_Init: wait for the daemons, connect, merge (Fig. 5).
                let (mut ses, handles) = AcSession::init(&jc, &dac, Some(rec.clone())).await;
                out.lock().push(format!("{} AC_Init complete: handles {:?}", t(&jc), handles));

                // Offload c = a + b to every accelerator (Listing 1).
                let n = 1 << 16;
                let a_host: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let b_host: Vec<f64> = (0..n).map(|i| (2 * i) as f64).collect();
                for &h in &handles {
                    let bytes = (n * 8) as u64;
                    let a = ses.mem_alloc(h, bytes).await.unwrap();
                    let b = ses.mem_alloc(h, bytes).await.unwrap();
                    let c = ses.mem_alloc(h, bytes).await.unwrap();
                    ses.mem_write(h, a, f64s_to_bytes(&a_host)).await.unwrap();
                    ses.mem_write(h, b, f64s_to_bytes(&b_host)).await.unwrap();
                    ses.kernel_run(
                        h,
                        "vector_add",
                        KernelArgs::new(
                            256,
                            256,
                            vec![Param::Ptr(a), Param::Ptr(b), Param::Ptr(c), Param::U64(n as u64)],
                        ),
                    )
                    .await
                    .unwrap();
                    let result = as_f64s(&ses.mem_read(h, c, bytes).await.unwrap());
                    assert!(result.iter().enumerate().all(|(i, v)| *v == (3 * i) as f64));
                    ses.mem_free(h, a).await.unwrap();
                    ses.mem_free(h, b).await.unwrap();
                    ses.mem_free(h, c).await.unwrap();
                    out.lock().push(format!(
                        "{} {}: vector_add of {n} elements verified",
                        t(&jc),
                        h
                    ));
                }
                ses.finalize();
                out.lock().push(format!("{} AC_Finalize done", t(&jc)));
            }
        }));

    cluster.qsub(spec);
    let stats = cluster.run();

    println!("== quickstart: static allocation of network-attached accelerators ==\n");
    for line in log.lock().iter() {
        println!("{line}");
    }
    if let Some(wait) = recorder.summary("acinit.wait") {
        let connect = recorder.summary("acinit.connect").unwrap();
        println!("\nAC_Init breakdown (cf. paper Fig. 7a):");
        println!("  waiting for daemons : {:.3} s", wait.mean);
        println!("  communicator setup  : {:.3} s", connect.mean);
    }
    println!(
        "\nsimulation: {} events, virtual time {:.3} s, {} processes",
        stats.events,
        stats.end_time.as_secs_f64(),
        stats.processes_spawned
    );
    assert_eq!(stats.process_panics, 0);
}
