//! A contended cluster: a generated mixed workload (CPU-only jobs plus
//! jobs with static accelerator requests and runtime `AC_Get` bursts)
//! pushed through the batch system; prints per-job outcomes and pool
//! statistics.
//!
//! Run with: `cargo run --release --example contended_cluster`

use std::sync::Arc;

use darms::prelude::*;
use darms_workload::{secs as fmt_secs, JobOutcome, Table, WorkloadConfig, WorkloadReport};
use parking_lot::Mutex;

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(2013).with_split(3, 4));
    let dac = cluster.dac.clone();
    let pool = cluster.accs.len();

    // Generate a 20-job mixed trace.
    let trace = WorkloadConfig::mixed().generate(20, 99);
    let grants = Arc::new(Mutex::new(0usize));
    let rejections = Arc::new(Mutex::new(0usize));

    for (i, t) in trace.iter().enumerate() {
        // Clamp to this cluster's capacity.
        let nodes = t.nodes.min(3);
        let acpn = t.acpn.min((pool / nodes) as u32);
        let runtime = t.runtime;
        let d = dac.clone();
        let g = grants.clone();
        let r = rejections.clone();
        let wants_dynamic = i % 3 == 0; // every third job grows at runtime
        let spec = JobSpec::synthetic(format!("job{i:02}"), runtime)
            .owner(&t.owner)
            .nodes(nodes)
            .ppn(t.ppn.min(8))
            .acpn(acpn)
            .walltime(t.walltime_estimate)
            .script(script(move |jc| {
                let d = d.clone();
                let g = g.clone();
                let r = r.clone();
                async move {
                    let (mut ses, _) = AcSession::init(&jc, &d, None).await;
                    jc.proc.sleep(runtime / 2).await;
                    if wants_dynamic && jc.node_index == 0 {
                        match ses.ac_get(1).await {
                            Ok(set) => {
                                *g.lock() += 1;
                                jc.proc.sleep(runtime / 4).await;
                                ses.ac_free(&set).await.unwrap();
                                jc.proc.sleep(runtime / 4).await;
                            }
                            Err(_) => {
                                *r.lock() += 1;
                                jc.proc.sleep(runtime / 2).await;
                            }
                        }
                    } else {
                        jc.proc.sleep(runtime / 2).await;
                    }
                    ses.finalize();
                }
            }));
        cluster.qsub_after(t.arrival, spec);
    }

    // A watcher collects the final statuses.
    let statuses = Arc::new(Mutex::new(Vec::new()));
    let out = statuses.clone();
    cluster.client_after("watcher", SimDuration::from_secs(1), move |c| async move {
        loop {
            let st = c.qstat().await;
            if st.len() == 20 && st.iter().all(|s| s.state.is_terminal()) {
                *out.lock() = st;
                break;
            }
            c.proc.sleep(SimDuration::from_secs(10)).await;
        }
    });

    let stats = cluster.run();
    assert_eq!(stats.process_panics, 0);

    let statuses = statuses.lock().clone();
    let mut table = Table::new(
        "contended cluster: 20-job mixed workload on 3 CN + 4 AC",
        &["job", "owner", "nodes", "acpn", "wait[s]", "turnaround[s]"],
    );
    let mut outcomes = Vec::new();
    for s in &statuses {
        let wait = match (s.started, s.submitted) {
            (Some(st), sub) => (st - sub).as_secs_f64(),
            _ => f64::NAN,
        };
        let turn = match (s.completed, s.submitted) {
            (Some(c), sub) => (c - sub).as_secs_f64(),
            _ => f64::NAN,
        };
        table.row(vec![
            s.name.clone(),
            s.owner.clone(),
            s.compute_hosts.len().to_string(),
            s.static_accs.first().map(|a| a.len()).unwrap_or(0).to_string(),
            fmt_secs(wait),
            fmt_secs(turn),
        ]);
        outcomes.push(JobOutcome {
            submitted: s.submitted,
            started: s.started,
            completed: s.completed,
            nodes: s.compute_hosts.len(),
            accs: s.static_accs.iter().map(Vec::len).sum(),
        });
    }
    println!("{}", table.render());
    let report = WorkloadReport::from_outcomes(&outcomes).expect("jobs completed");
    println!(
        "finished {} jobs; mean wait {:.1}s (p95 {:.1}s), mean turnaround {:.1}s",
        report.finished, report.mean_wait, report.p95_wait, report.mean_turnaround
    );
    println!(
        "makespan {:.1}s; static accelerator utilisation {:.1}%",
        report.makespan.as_secs_f64(),
        100.0 * report.acc_utilisation(pool)
    );
    println!("dynamic requests: {} granted, {} rejected", grants.lock(), rejections.lock());
    println!(
        "\nsimulation: {} events, virtual time {:.1} s",
        stats.events,
        stats.end_time.as_secs_f64()
    );
}
