//! An *evolving* application: computational phases with different
//! accelerator demand, grown and shrunk at runtime with `AC_Get`/`AC_Free`
//! — the usage scenario motivating the paper. Includes a deliberately
//! oversized request that the batch system rejects (the application
//! continues with its current set, §II-B).
//!
//! Run with: `cargo run --example dynamic_scaling`

use std::sync::Arc;

use darms::prelude::*;
use parking_lot::Mutex;

fn main() {
    let mut cluster = Cluster::build(ClusterConfig::paper_testbed(7).with_split(1, 6));
    let dac = cluster.dac.clone();
    let recorder = cluster.recorder.clone();
    let log = Arc::new(Mutex::new(Vec::<String>::new()));

    let out = log.clone();
    let rec = recorder.clone();
    let spec = JobSpec::synthetic("evolving", SimDuration::from_secs(60))
        .owner("bob")
        .acpn(1) // start small: one static accelerator
        .script(script(move |jc| {
            let dac = dac.clone();
            let rec = rec.clone();
            let out = out.clone();
            async move {
                let say = |jc: &JobCtx, s: String| {
                    out.lock().push(format!("[t={:>7.3}s] {s}", jc.proc.now().as_secs_f64()));
                };
                let (mut ses, statics) = AcSession::init(&jc, &dac, Some(rec.clone())).await;
                say(&jc, format!("phase 1: warm-up on {} static accelerator", statics.len()));
                let hs = ses_handles(&ses);
                run_phase(&mut ses, &hs, &jc, 1 << 14).await;

                // Phase 2 needs much more parallelism: grow by 4.
                say(&jc, "phase 2: AC_Get(4) — demanding phase begins".into());
                let set = ses.ac_get(4).await.expect("pool of 6 has 5 free");
                say(
                    &jc,
                    format!("  granted {} ({} accelerators live)", set.client_id, ses.live_count()),
                );
                let hs = ses_handles(&ses);
                run_phase(&mut ses, &hs, &jc, 1 << 15).await;

                // An oversized request: only 1 accelerator remains free.
                say(&jc, "phase 2b: AC_Get(3) — expected to be rejected".into());
                match ses.ac_get(3).await {
                    Err(DacError::Rejected(r)) => {
                        say(&jc, format!("  rejected ({r:?}); continuing with current set"))
                    }
                    other => panic!("expected rejection, got {other:?}"),
                }

                // Phase 3 is light again: release the dynamic set.
                say(&jc, "phase 3: AC_Free — shrinking back".into());
                ses.ac_free(&set).await.unwrap();
                say(&jc, format!("  released; {} accelerator(s) live", ses.live_count()));
                let hs = ses_handles(&ses);
                run_phase(&mut ses, &hs, &jc, 1 << 13).await;

                ses.finalize();
                say(&jc, "AC_Finalize".into());
            }
        }));

    cluster.qsub(spec);
    let stats = cluster.run();

    println!("== dynamic_scaling: an evolving application under the dynamic batch system ==\n");
    for line in log.lock().iter() {
        println!("{line}");
    }
    if let Some(batch) = recorder.summary("acget.batch") {
        let mpi = recorder.summary("acget.mpi").unwrap();
        println!("\nAC_Get breakdown over {} successful call(s) (cf. paper Fig. 7b):", batch.n);
        println!("  batch system            : mean {:.3} s", batch.mean);
        println!("  resource mgmt lib (MPI) : mean {:.3} s", mpi.mean);
    }
    if let Some(rej) = recorder.summary("acget.rejected") {
        println!("  rejected request latency: mean {:.3} s", rej.mean);
    }
    println!(
        "\nsimulation: {} events, virtual time {:.3} s",
        stats.events,
        stats.end_time.as_secs_f64()
    );
    assert_eq!(stats.process_panics, 0);
}

fn ses_handles(ses: &AcSession) -> Vec<AcHandle> {
    ses.live_handles()
}

/// One compute phase: scale a vector on every live accelerator, kernels
/// launched asynchronously across the set and then drained (the
/// latency-hiding pattern from the paper's introduction).
async fn run_phase(ses: &mut AcSession, handles: &[AcHandle], jc: &JobCtx, n: usize) {
    let bytes = (n * 8) as u64;
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut allocated = Vec::new();
    for &h in handles {
        let p = ses.mem_alloc(h, bytes).await.unwrap();
        ses.mem_write(h, p, f64s_to_bytes(&xs)).await.unwrap();
        allocated.push((h, p));
    }
    // Launch everywhere, then wait everywhere: kernels overlap.
    let mut pending = Vec::new();
    for &(h, p) in &allocated {
        let l = ses
            .kernel_launch(
                h,
                "scale",
                KernelArgs::new(
                    128,
                    128,
                    vec![Param::Ptr(p), Param::U64(n as u64), Param::F64(2.0)],
                ),
            )
            .await
            .unwrap();
        pending.push(l);
    }
    for l in pending {
        ses.kernel_wait(l).await.unwrap();
    }
    for (h, p) in allocated {
        let r = as_f64s(&ses.mem_read(h, p, 64).await.unwrap());
        assert_eq!(r[1], 2.0, "scaled by 2");
        ses.mem_free(h, p).await.unwrap();
    }
    let _ = jc;
}
