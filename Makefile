# Developer convenience targets. `make verify` is the full pre-merge
# gate: formatting, lints as errors, a release build, the quiet test
# suite, and the bench regression check — the same sequence CI runs.
# `make bench` runs the perf-regression macro suite and refreshes
# BENCH_sim.json; `make bench-smoke` is the tiny-workload variant (one
# trial per scenario); `make bench-check` runs the smoke suite and
# fails if ping-pong or datacenter@1k-hosts throughput drops more
# than 20% below the committed BENCH_sim.json. `make chaos-smoke` runs the seeded
# fault-injection sweep over the default 50 seeds (each run twice to
# prove byte-identical reproduction); for longer soaks run e.g.
# `cargo run --release -p darms-experiments --bin chaos_sweep -- --seeds 0..5000`.
# `make soak-smoke` runs the darms-soak cell matrix (seed x fault-plan
# x workload, every cell run twice for byte-identity, invariants
# audited, SLO quantiles reported; DESIGN.md §13); for a long soak run
# e.g. `cargo run --release -p darms-experiments --bin darms_soak -- --seeds 0..100 --budget-secs 600`.
# `make lint-darms` runs the workspace determinism & protocol lint
# (DESIGN.md §12) in deny mode; `make deny` audits Cargo.lock and the
# crate licenses against deny.toml.

.PHONY: verify fmt lint lint-darms deny build test bench bench-smoke bench-check chaos-smoke soak-smoke

verify: fmt lint lint-darms deny build test chaos-smoke soak-smoke bench-check

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

lint-darms:
	cargo run --release -q -p darms-lint -- --deny

deny:
	cargo run --release -q -p darms-lint -- deny

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo run --release -p darms-experiments --bin perf_report

bench-smoke:
	cargo run --release -p darms-experiments --bin perf_report -- --smoke --out target/BENCH_sim.smoke.json

bench-check:
	cargo run --release -p darms-experiments --bin perf_report -- --smoke --out target/BENCH_sim.smoke.json --check BENCH_sim.json

chaos-smoke:
	cargo run --release -p darms-experiments --bin chaos_sweep -- --smoke

soak-smoke:
	cargo run --release -p darms-experiments --bin darms_soak -- --smoke
