# Developer convenience targets. `make verify` is the full pre-merge
# gate: formatting, lints as errors, a release build, and the quiet
# test suite — the same sequence CI runs. `make bench` runs the
# perf-regression macro suite and refreshes BENCH_sim.json;
# `make bench-smoke` is the tiny-workload variant (one trial per
# scenario) that stays fast enough to run alongside `make verify`.

.PHONY: verify fmt lint build test bench bench-smoke

verify: fmt lint build test

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

build:
	cargo build --release

test:
	cargo test -q

bench:
	cargo run --release -p darms-experiments --bin perf_report

bench-smoke:
	cargo run --release -p darms-experiments --bin perf_report -- --smoke --out target/BENCH_sim.smoke.json
