# Developer convenience targets. `make verify` is the full pre-merge
# gate: formatting, lints as errors, a release build, and the quiet
# test suite — the same sequence CI runs.

.PHONY: verify fmt lint build test

verify: fmt lint build test

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

build:
	cargo build --release

test:
	cargo test -q
