//! A minimal, std-backed stand-in for the subset of the `parking_lot`
//! API this workspace uses, so the build is hermetic (no registry
//! access required). Semantics match `parking_lot` where the workspace
//! depends on them:
//!
//! - `Mutex::lock()` returns the guard directly (no `Result`); a
//!   poisoned std mutex is recovered transparently, matching
//!   `parking_lot`'s lack of poisoning.
//! - `Condvar::wait(&mut guard)` takes the guard by `&mut` reference
//!   (std takes it by value), which the simulation engine's
//!   process hand-off relies on.
//! - `RwLock` read/write guards, also unpoisoned.
//!
//! Fairness and inline-atomic optimizations of the real crate are not
//! reproduced; contention here is the uncontended/low-contention case
//! the simulator exercises.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (std-backed, non-poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so a
/// [`Condvar`] can take it by value and hand it back through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    // Invariant: always `Some` outside of `Condvar::wait` internals.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(recover(self.inner.lock())) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard { inner: Some(p.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover_ref(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified. Takes the guard by `&mut` (parking_lot
    /// signature): the lock is released while parked and re-acquired
    /// before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        guard.inner = Some(recover(self.inner.wait(std_guard)));
    }

    /// Like [`Condvar::wait`] with a timeout. Returns a token whose
    /// [`WaitTimeoutResult::timed_out`] reports whether the wait expired.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, t)) => {
                guard.inner = Some(g);
                WaitTimeoutResult(t.timed_out())
            }
            Err(p) => {
                let (g, t) = p.into_inner();
                guard.inner = Some(g);
                WaitTimeoutResult(t.timed_out())
            }
        }
    }

    /// Like [`Condvar::wait_for`] against an absolute deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter. Returns whether a thread was woken (std cannot
    /// report this; `false` is returned as a conservative stand-in).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wake all waiters. Returns the number woken (always 0; see
    /// [`Condvar::notify_one`]).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Result token of a timed wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A reader-writer lock (std-backed, non-poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: recover(self.inner.read()) }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: recover(self.inner.write()) }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover_ref(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

fn recover<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(|p| p.into_inner())
}

fn recover_ref<'a, T: ?Sized>(r: Result<&'a mut T, sync::PoisonError<&'a mut T>>) -> &'a mut T {
    r.unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
