//! A minimal, dependency-free stand-in for the subset of the
//! `criterion` benchmarking API this workspace uses, so the build is
//! hermetic (no registry access required).
//!
//! Behavior:
//!
//! - `cargo bench` (cargo passes `--bench`): each benchmark is warmed
//!   up once, then timed for `sample_size` samples; mean/min/max wall
//!   time per iteration is printed in a criterion-like line format.
//! - `cargo test` (cargo passes `--test`, or no mode flag): each
//!   benchmark body runs exactly once as a smoke test, keeping the
//!   test suite fast while still compiling and exercising bench code.
//! - No plotting, no statistical regression analysis, no output files.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    default_sample_size: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full timing runs (`cargo bench`).
    Bench,
    /// One iteration per benchmark (`cargo test`).
    Smoke,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench executables with `--bench`; test runs of
        // harness-less bench targets pass `--test` or nothing useful.
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion { mode: if bench { Mode::Bench } else { Mode::Smoke }, default_sample_size: 10 }
    }
}

impl Criterion {
    /// Accept (and ignore) criterion CLI configuration; the mode is
    /// already derived from the cargo-provided `--bench`/`--test` flag.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self.mode, name, self.default_sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.parent.default_sample_size);
        run_one(self.parent.mode, &label, samples, &mut |b| f(b, input));
        self
    }

    /// Benchmark `f`, labeled by `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.parent.default_sample_size);
        run_one(self.parent.mode, &label, samples, &mut f);
        self
    }

    /// End the group (upstream emits summary reports here; no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark data point.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identify by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Identify by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    mode: Mode,
    /// Accumulated per-sample durations (bench mode).
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Time `routine`, running it once in smoke mode or
    /// `sample_size` times (after one warmup) in bench mode.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Bench => {
                black_box(routine()); // warmup
                for _ in 0..self.requested {
                    let t0 = Instant::now();
                    black_box(routine());
                    self.samples.push(t0.elapsed());
                }
            }
        }
    }
}

fn run_one(mode: Mode, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mode, samples: Vec::new(), requested: samples.max(1) };
    f(&mut b);
    match mode {
        Mode::Smoke => println!("bench {label}: ok (smoke: 1 iteration)"),
        Mode::Bench => {
            if b.samples.is_empty() {
                println!("bench {label}: no samples (b.iter never called)");
                return;
            }
            let total: Duration = b.samples.iter().sum();
            let mean = total / b.samples.len() as u32;
            let min = b.samples.iter().min().copied().unwrap_or_default();
            let max = b.samples.iter().max().copied().unwrap_or_default();
            println!(
                "bench {label}: time [{} {} {}] ({} samples)",
                fmt_dur(min),
                fmt_dur(mean),
                fmt_dur(max),
                b.samples.len()
            );
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0;
        let mut b = Bencher { mode: Mode::Smoke, samples: Vec::new(), requested: 10 };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut calls = 0;
        let mut b = Bencher { mode: Mode::Bench, samples: Vec::new(), requested: 4 };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5, "warmup + 4 samples");
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
        assert_eq!(BenchmarkId::new("vector_add", 1024).to_string(), "vector_add/1024");
    }
}
