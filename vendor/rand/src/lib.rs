//! A minimal, dependency-free stand-in for the subset of the `rand`
//! crate API this workspace uses, so the build is hermetic (no
//! registry access required).
//!
//! The simulator only needs *deterministic, well-mixed* pseudo-random
//! numbers — it does not need bit-compatibility with upstream `rand`.
//! [`rngs::SmallRng`] is xoshiro256++ (the same family upstream's
//! `SmallRng` uses on 64-bit targets) seeded through SplitMix64, so
//! every sequence is fully determined by `seed_from_u64`.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of `u64`s plus derived samplers.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, deterministic from a `u64`.
pub trait SeedableRng: Sized {
    /// Build an RNG whose entire sequence is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of a plain `% span` would be acceptable
                // for a simulator, but this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

uint_range!(u64, u32, usize, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = f64::sample(rng) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_range!(f64, f32);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64 (matching the algorithm family of upstream
    /// `SmallRng` on 64-bit platforms, not its exact stream).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = r.gen_range(1..1000u64);
            assert!((1..1000).contains(&a));
            let b = r.gen_range(-0.25..=0.25f64);
            assert!((-0.25..=0.25).contains(&b));
            let c = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&c));
        }
    }

    #[test]
    fn range_output_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0..10u64) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn seeding_is_stable() {
        // Known-answer test for xoshiro256++ with SplitMix64 seeding,
        // guarding the determinism contract across refactors.
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.next_u64();
        let mut r2 = SmallRng::seed_from_u64(0);
        assert_eq!(first, r2.next_u64());
    }
}
