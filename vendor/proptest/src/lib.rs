//! A minimal, dependency-free stand-in for the subset of the
//! `proptest` crate API this workspace uses, so the build is hermetic
//! (no registry access required).
//!
//! Differences from upstream, deliberately accepted:
//!
//! - Case generation is seeded deterministically per test (stable
//!   across runs and machines) instead of from OS entropy, so CI
//!   results are reproducible.
//! - No shrinking: on failure the *unshrunk* input is printed and the
//!   panic is re-raised. The input values are echoed via `Debug`, which
//!   upstream requires of strategy values anyway.
//! - `prop_assert!`/`prop_assert_eq!` panic like their `assert!`
//!   counterparts rather than returning `Err`, which is equivalent
//!   under this runner.

/// Test-runner configuration and entry points.
pub mod test_runner {
    use super::strategy::Strategy;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration. Only `cases` is interpreted; the other
    /// fields exist so upstream-style struct literals
    /// (`ProptestConfig { cases: N, ..ProptestConfig::default() }`)
    /// keep compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; ignored.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 65536 }
        }
    }

    /// Drive `body` over `cases` generated inputs. On panic, echo the
    /// failing input (unshrunk) and re-raise.
    pub fn run_cases<S: Strategy>(config: &ProptestConfig, strategy: &S, body: impl Fn(S::Value)) {
        for case in 0..config.cases {
            // Stable per-case seed: reproducible runs, distinct cases.
            let mut rng = super::rng::Rng::new(
                0xa076_1d64_78bd_642f ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(value))) {
                eprintln!(
                    "proptest: case {}/{} failed with input: {shown}",
                    case + 1,
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

/// Minimal SplitMix64 generator used for case generation.
pub(crate) mod rng {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::rng::Rng;
    use std::fmt::Debug;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Box the strategy (API-compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            self.0.generate(rng)
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    start + rng.below((end - start) as u64 + 1) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::rng::Rng;
    use super::strategy::Strategy;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!({ $crate::test_runner::ProptestConfig::default() } $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ({ $config:expr }
     $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategy = ($($strat,)+);
                $crate::test_runner::run_cases(&__config, &__strategy, |__values| {
                    #[allow(unused_mut, unused_parens)]
                    let ($($pat,)+) = __values;
                    $body
                });
            }
        )*
    };
}

// Keep the names referenced by the macro reachable from the crate root
// the way upstream exposes them.
pub use strategy::Strategy;
pub use test_runner::ProptestConfig;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Pair {
        a: u32,
        b: u32,
    }

    fn pair() -> impl Strategy<Value = Pair> {
        (0u32..10, 5u32..=9).prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 1u64..100, y in 0usize..=4) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths(mut v in prop::collection::vec(0u8..3, 1..7)) {
            v.push(0);
            prop_assert!((2..=7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn mapped_structs(p in prop::collection::vec(pair(), 1..4)) {
            for q in p {
                prop_assert!(q.a < 10);
                prop_assert!((5..=9).contains(&q.b));
            }
        }
    }

    #[test]
    fn failure_reports_input() {
        let caught = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                &ProptestConfig { cases: 8, ..ProptestConfig::default() },
                &(0u32..10,),
                |(x,)| assert!(x > 100, "forced failure"),
            );
        });
        assert!(caught.is_err());
    }
}
